"""The worker process: attach, exchange halos, step, synchronise.

This module is the ``spawn`` entry point of :mod:`repro.distributed` —
everything here must be importable from a fresh interpreter (no closures,
no lambdas in process args). One worker owns one shard and runs:

1. **attach** — map the published feature matrix, label/train-mask
   vectors, and this shard's CSR index arrays from shared memory
   (zero-copy; the only duplication is the explicit local row gather,
   which is accounted);
2. per round: **halo exchange** (write owned boundary rows per outgoing
   cross arc into the pairwise shared halo buffer, read peers' buffers
   into local ghost slots), an optional **fault site** consultation
   (``"training.worker_step"``, same site and semantics as the
   simulation), one **local GCN step** over the halo-augmented local
   graph with the loss restricted to owned training nodes, then
   **parameter sync** — publish the flattened local state, wait for
   the coordinator's weighted average, load it;
3. **report** — a final shared-memory counter block carrying halo
   floats actually shipped/received, attach accounting, fault counters,
   and checkpoint saves.

Why shared memory for *control* too, not queues: a worker killed
mid-``Queue.put`` (the chaos scenario) leaves a partial pickle frame in
the pipe, and every later reader blocks forever inside ``get()`` — the
poll sees readable bytes, the body never arrives. The protocol here is
kill-safe by construction: every channel is a preallocated segment plus
a monotonically advancing *round cell* written last, so the only
failure mode a dead peer can leave behind is an un-advanced counter —
which waiters detect through the coordinator-maintained ``alive`` byte
array and degrade past (stale ghost rows, renormalised averages)
instead of blocking on.

Publication ordering: a writer fills the payload buffer first and
advances the round cell last; a reader checks the round cell first and
copies the payload immediately after. Lockstep round structure makes
the buffer quiescent while read (a peer cannot start round ``r+1``'s
write until the coordinator has seen every round-``r`` read complete).
"""

from __future__ import annotations

import sys
import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.distributed.shm import AttachedSegments, SharedArrayHandle

#: Spin-wait interval (seconds); liveness is checked between sleeps.
_POLL_S = 0.002

#: Counter slots in a worker's "done" block, after the leading done flag.
DONE_FIELDS = (
    "halo_floats_shipped",
    "halo_floats_received",
    "halo_misses",
    "steps",
    "failures",
    "stragglers",
    "sync_rounds",
    "checkpoint_saves",
    "resume_saves",
    "restored_round",
    "attaches",
    "mapped_bytes",
    "copied_bytes",
)

#: state-meta cell indices: ``[round, n_train, failed, generation]``.
#: The generation cell carries the incarnation's fencing token and is
#: written with the payload, before the round cell advances.
META_ROUND, META_N_TRAIN, META_FAILED, META_GENERATION = 0, 1, 2, 3
#: int64 cells in one rank's state-meta block.
META_CELLS = 4


def flatten_state(state: dict, out: np.ndarray | None = None) -> np.ndarray:
    """Concatenate a model state dict into one float64 vector.

    Keys are visited in sorted order, so any two processes holding the
    same architecture agree on the layout — the property that lets the
    coordinator average flat vectors without shipping key names.
    """
    parts = [np.asarray(state[key], dtype=np.float64).ravel()
             for key in sorted(state)]
    flat = np.concatenate(parts) if parts else np.empty(0)
    if out is None:
        return flat
    out[:] = flat
    return out


def unflatten_state(vec: np.ndarray, template: dict) -> dict:
    """Rebuild a state dict with ``template``'s keys/shapes from a vector."""
    state = {}
    offset = 0
    for key in sorted(template):
        ref = np.asarray(template[key])
        size = ref.size
        state[key] = vec[offset:offset + size].reshape(ref.shape).copy()
        offset += size
    return state


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs, picklable and small.

    Large arrays travel as :class:`SharedArrayHandle` descriptors — the
    pages themselves never cross the process boundary.
    """

    rank: int
    n_parts: int
    epochs: int
    hidden: int
    lr: float
    weight_decay: float
    dropout: float
    seed: int
    n_classes: int
    directed: bool
    # shared data plane
    x: SharedArrayHandle
    y: SharedArrayHandle
    train_mask: SharedArrayHandle
    alive: SharedArrayHandle
    indptr: SharedArrayHandle
    indices: SharedArrayHandle
    weights: SharedArrayHandle
    owned: SharedArrayHandle
    ghosts: SharedArrayHandle
    send: dict[int, SharedArrayHandle] = field(default_factory=dict)
    recv: dict[int, SharedArrayHandle] = field(default_factory=dict)
    #: peer -> (payload buffer, round cell) this worker WRITES (to peer)
    halo_out: dict[int, tuple[SharedArrayHandle, SharedArrayHandle]] = field(
        default_factory=dict
    )
    #: peer -> (payload buffer, round cell) this worker READS (from peer)
    halo_in: dict[int, tuple[SharedArrayHandle, SharedArrayHandle]] = field(
        default_factory=dict
    )
    # shared control plane
    params: SharedArrayHandle | None = None
    params_round: SharedArrayHandle | None = None
    state: SharedArrayHandle | None = None
    state_meta: SharedArrayHandle | None = None
    done: SharedArrayHandle | None = None
    # chaos / checkpointing
    fault_plan: object | None = None
    fault_seed: int = 0
    checkpoint_dir: str | None = None
    checkpoint_every: int = 0
    checkpoint_keep: int = 2
    # self-healing membership (repro.distributed.supervisor) — defaults
    # keep the spec picklable and the unsupervised hot path untouched.
    generation: int = 0
    lease: SharedArrayHandle | None = None
    beat_interval_s: float = 0.05
    resume: bool = False
    resume_dir: str | None = None
    # telemetry (repro.obs.telemetry) — all None/0 means "off", which
    # keeps the spec picklable and the worker hot path untouched.
    trace_ctx: dict | None = None
    span_log_path: str | None = None
    metrics: SharedArrayHandle | None = None
    metrics_meta: SharedArrayHandle | None = None
    telemetry_every: int = 1
    # timeouts
    sync_timeout_s: float = 60.0
    halo_timeout_s: float = 10.0
    # sys.path insurance for spawn (the parent's repro location)
    package_root: str | None = None


def _wait_cell(cell: np.ndarray, target: int, timeout_s: float,
               peer_alive=None) -> bool:
    """Spin until ``cell[0] >= target``; ``False`` on timeout/dead peer.

    ``peer_alive`` is a zero-arg callable; when it turns falsy and the
    cell still has not advanced, the wait gives up immediately (the
    writer died before publishing this round).
    """
    deadline = time.monotonic() + timeout_s
    while cell[0] < target:
        if peer_alive is not None and not peer_alive():
            return cell[0] >= target
        if time.monotonic() > deadline:
            return False
        time.sleep(_POLL_S)
    return True


def worker_main(spec: WorkerSpec) -> None:
    """Entry point of one training worker (``spawn``-safe, top level)."""
    if spec.package_root and spec.package_root not in sys.path:
        sys.path.insert(0, spec.package_root)
    # Imports happen after the path fix so a spawn child launched from a
    # PYTHONPATH-less environment still finds the package.
    from repro import obs
    from repro.errors import DistributedError, FaultError, TransientError
    from repro.graph.core import Graph
    from repro.models.gcn import GCN
    from repro.resilience.checkpoint import Checkpointer
    from repro.resilience.faults import (
        FAULTS,
        FaultInjector,
        clear_injector,
        install_injector,
    )
    from repro.tensor import functional as F
    from repro.tensor.optim import Adam

    log = obs.get_logger(f"repro.distributed.worker{spec.rank}")
    rank = spec.rank
    segs = AttachedSegments()
    injector_installed = False
    beat_stop = None
    try:
        x_full = segs.attach(spec.x)
        y_full = segs.attach(spec.y)
        train_mask = segs.attach(spec.train_mask)
        alive = segs.attach(spec.alive)
        indptr = segs.attach(spec.indptr)
        indices = segs.attach(spec.indices)
        weights = segs.attach(spec.weights)
        owned = segs.attach(spec.owned)
        ghosts = segs.attach(spec.ghosts)
        send_idx = {p: segs.attach(h) for p, h in spec.send.items()}
        recv_idx = {p: segs.attach(h) for p, h in spec.recv.items()}
        halo_out = {
            p: (segs.attach(buf, writable=True), segs.attach(rnd, writable=True))
            for p, (buf, rnd) in spec.halo_out.items()
        }
        halo_in = {
            p: (segs.attach(buf), segs.attach(rnd))
            for p, (buf, rnd) in spec.halo_in.items()
        }
        params_vec = segs.attach(spec.params)
        params_round = segs.attach(spec.params_round)
        state_vec = segs.attach(spec.state, writable=True)
        state_meta = segs.attach(spec.state_meta, writable=True)
        done_block = segs.attach(spec.done, writable=True)

        # ---- heartbeat lease (payload-first, sequence-last) ------------
        # A daemon thread re-publishes this incarnation's lease on a
        # fixed cadence: generation + last synchronised round first, the
        # beat sequence last, so the coordinator never observes a torn
        # beat. ``last_round_box`` is the main loop's one-way channel to
        # the beating thread (a single int store — atomic under the GIL).
        last_round_box = [-1]
        if spec.lease is not None:
            import os
            import threading

            from repro.distributed.supervisor import (
                LEASE_GENERATION,
                LEASE_PID,
                LEASE_ROUND,
                LEASE_SEQ,
            )

            lease_cell = segs.attach(spec.lease, writable=True)
            beat_stop = threading.Event()
            pid = os.getpid()

            def _beat_loop() -> None:
                # Resume past the previous incarnation's sequence so the
                # coordinator's change detection never misses the first
                # beat of a respawn.
                seq = int(lease_cell[LEASE_SEQ]) + 1
                while True:
                    lease_cell[LEASE_GENERATION] = spec.generation
                    lease_cell[LEASE_ROUND] = last_round_box[0]
                    lease_cell[LEASE_PID] = pid
                    lease_cell[LEASE_SEQ] = seq  # publish last
                    seq += 1
                    if beat_stop.wait(spec.beat_interval_s):
                        return

            beat_thread = threading.Thread(
                target=_beat_loop,
                name=f"repro-beat-w{rank}",
                daemon=True,
            )
            beat_thread.start()

        # ---- telemetry plane (opt-in via the propagated context) -------
        # The coordinator mints a TraceContext and ships it as a plain
        # dict; its presence is the per-worker telemetry switch. Spans go
        # to a per-rank JSONL ring (flushed at round boundaries, so a
        # chaos kill loses at most the in-flight round) and the metrics
        # registry is published through the kill-safe shm cell below.
        span_writer = None
        metrics_buf = metrics_meta = None
        wreg = None
        round_hist = None
        prev_counts: dict[str, int] = {}
        if spec.trace_ctx is not None:
            from repro.obs.telemetry import SpanLogWriter, TraceContext
            from repro.obs.telemetry import aggregate as _agg

            obs.configure(enabled=True)
            tctx = TraceContext.from_dict(spec.trace_ctx).child(rank=str(rank))
            if spec.span_log_path:
                span_writer = SpanLogWriter(
                    spec.span_log_path, tctx, rank=rank
                )
            if spec.metrics is not None and spec.metrics_meta is not None:
                metrics_buf = segs.attach(spec.metrics, writable=True)
                metrics_meta = segs.attach(spec.metrics_meta, writable=True)
            wreg = obs.get_registry()
            round_hist = wreg.histogram("worker.round_s")
            prev_counts = dict.fromkeys(DONE_FIELDS, 0)

        def _publish_telemetry(counters: dict, seq: int) -> None:
            """Flush spans + publish the registry dump (payload-first,
            seq-cell-last). Cheap no-op when telemetry is off."""
            if span_writer is not None:
                span_writer.flush(obs.get_tracer())
            if metrics_buf is None:
                return
            for name in DONE_FIELDS:
                delta = counters[name] - prev_counts[name]
                if delta > 0:
                    wreg.counter(f"worker.{name}").inc(float(delta))
                prev_counts[name] = counters[name]
            _agg.publish_blob(
                metrics_buf, metrics_meta,
                _agg.encode_registry(wreg, rank=rank), seq,
            )

        local_nodes = np.concatenate([owned, ghosts])
        # The one deliberate duplication: this worker's local feature
        # rows (owned + ghosts), writable so halo reads can land.
        x_local = segs.count_copy(x_full[local_nodes].copy())
        y_local = segs.count_copy(y_full[local_nodes].copy())
        local_train = np.flatnonzero(train_mask[owned])

        local_graph = Graph(
            indptr, indices, weights,
            directed=spec.directed, validate=False,
        )
        prep = GCN.prepare(local_graph)
        model = GCN(
            x_full.shape[1], spec.hidden, spec.n_classes,
            n_layers=2, dropout=spec.dropout, seed=spec.seed,
        )
        opt = Adam(
            model.parameters(), lr=spec.lr, weight_decay=spec.weight_decay
        )
        template = model.state_dict()
        if spec.fault_plan is not None:
            install_injector(
                FaultInjector(spec.fault_plan, seed=spec.fault_seed + rank)
            )
            injector_installed = True
        checkpointer = None
        if spec.checkpoint_dir and spec.checkpoint_every > 0:
            checkpointer = Checkpointer(
                spec.checkpoint_dir,
                keep=spec.checkpoint_keep,
                namespace=f"rank{rank}",
            )
        # Resume checkpoints back the supervisor's respawn path: one
        # bit-exact snapshot per completed round (model + optimizer +
        # dropout RNG + fault-schedule position), in a directory the
        # coordinator owns, namespaced per rank.
        resume_ckpt = None
        if spec.resume_dir:
            resume_ckpt = Checkpointer(
                spec.resume_dir,
                keep=2,
                prefix="resume",
                namespace=f"rank{rank}",
            )

        counters = dict.fromkeys(DONE_FIELDS, 0)

        def _resume_snapshot() -> dict:
            """Everything a successor incarnation needs for a bit-exact
            rejoin: parameters, optimizer moments, the dropout RNG
            position, and the fault schedule position."""
            snap = {
                "model": model.state_dict(),
                "optimizer": opt.state_dict(),
            }
            if model.dropout is not None:
                snap["rng_state"] = model.dropout._rng.bit_generator.state
            inj_now = FAULTS.injector if FAULTS.active else None
            if inj_now is not None:
                snap["fault_calls"] = inj_now.call_counts()
            return snap

        # Resume checkpoint step ``s`` holds the state *after completing
        # round s-1* (step 0 = the shared starting point, saved below
        # before the round loop opens); a respawned incarnation loading
        # step ``s`` re-enters the loop at round ``s``.
        start_round = 0
        if spec.resume and resume_ckpt is not None and resume_ckpt.steps():
            # Fenced rejoin: restore the pre-crash incarnation's exact
            # state as of its last completed round and redo the next
            # round. The restored dropout RNG and the replayed fault
            # schedule make every redone computation bit-identical to
            # what the dead incarnation produced (or would have), which
            # is what keeps the supervised run's result identical to the
            # unfaulted one.
            step, snap = resume_ckpt.load()
            model.load_state_dict(
                {k: np.asarray(v) for k, v in snap["model"].items()}
            )
            opt.load_state_dict(snap.get("optimizer", {}))
            if model.dropout is not None and "rng_state" in snap:
                model.dropout._rng.bit_generator.state = snap["rng_state"]
            fault_calls = snap.get("fault_calls")
            if injector_installed and fault_calls:
                FAULTS.injector.fast_forward(
                    {site: int(n) for site, n in fault_calls.items()}
                )
            start_round = int(step)
            counters["restored_round"] = start_round
            last_round_box[0] = start_round - 1
            log.info(
                "rank %d generation %d resumed at round %d",
                rank, spec.generation, start_round,
            )
        else:
            # All ranks start from the coordinator's round -1 publication
            # so parameter averaging begins from one shared point.
            if not _wait_cell(params_round, -1, spec.sync_timeout_s):
                raise DistributedError(
                    "timed out waiting for initial parameters"
                )
            model.load_state_dict(unflatten_state(params_vec, template))
            if resume_ckpt is not None:
                # The step-0 snapshot pins the *initial* parameters: a
                # rank killed during round 0 must redo it from these,
                # not from whatever average the params segment holds by
                # the time the successor attaches.
                resume_ckpt.save(0, _resume_snapshot())
                counters["resume_saves"] += 1

        for round_no in range(start_round, spec.epochs):
            round_start = time.monotonic()
            # The round span is a per-round ROOT (no enclosing run span),
            # so a chaos kill mid-round leaves every previously flushed
            # round intact in the span log.
            with obs.span("worker.round", round=round_no, rank=str(rank)):
                # ---- halo exchange (per-arc, matches accounting) -------
                with obs.span("worker.halo_exchange", round=round_no):
                    for peer in sorted(halo_out):
                        buf, rnd = halo_out[peer]
                        buf[:] = x_local[send_idx[peer]]
                        rnd[0] = round_no  # publish AFTER payload complete
                        counters["halo_floats_shipped"] += int(buf.size)
                    for peer in sorted(halo_in):
                        buf, rnd = halo_in[peer]
                        fresh = _wait_cell(
                            rnd, round_no, spec.halo_timeout_s,
                            peer_alive=lambda p=peer: bool(alive[p]),
                        )
                        if not fresh:
                            # Dead or silent peer: train on the stale
                            # ghost rows already resident (degraded,
                            # never blocked).
                            counters["halo_misses"] += 1
                            continue
                        x_local[recv_idx[peer]] = buf
                        counters["halo_floats_received"] += int(buf.size)

                # ---- local step through the shared fault site ----------
                failed = False
                action = None
                inj = FAULTS.injector if FAULTS.active else None
                if inj is not None:
                    try:
                        action = inj.fire("training.worker_step")
                    except (TransientError, FaultError):
                        counters["failures"] += 1
                        failed = True
                if action == "delay":
                    counters["stragglers"] += 1
                if not failed and len(local_train):
                    with obs.span("worker.step", round=round_no):
                        model.train()
                        opt.zero_grad()
                        with obs.span("worker.spmm"):
                            logits = model(prep, x_local)
                        loss = F.cross_entropy(
                            logits.gather_rows(local_train),
                            y_local[local_train],
                        )
                        loss.backward()
                        opt.step()
                    counters["steps"] += 1
                    if action in ("drop", "corrupt"):
                        # The step ran but its update never reached (or
                        # was rejected by) the coordinator.
                        counters["failures"] += 1
                        failed = True

                # ---- parameter sync -----------------------------------
                if not failed:
                    flatten_state(model.state_dict(), out=state_vec)
                state_meta[META_N_TRAIN] = len(local_train)
                state_meta[META_FAILED] = int(failed)
                state_meta[META_GENERATION] = spec.generation
                state_meta[META_ROUND] = round_no  # publish last
                if not _wait_cell(
                    params_round, round_no, spec.sync_timeout_s
                ):
                    raise DistributedError(
                        f"timed out waiting for round {round_no} parameters"
                    )
                model.load_state_dict(unflatten_state(params_vec, template))
                counters["sync_rounds"] += 1
                last_round_box[0] = round_no
                if (
                    checkpointer is not None
                    and (round_no + 1) % spec.checkpoint_every == 0
                ):
                    checkpointer.save(
                        round_no,
                        {
                            "model": model.state_dict(),
                            "optimizer": opt.state_dict(),
                        },
                    )
                    counters["checkpoint_saves"] += 1
                if resume_ckpt is not None:
                    resume_ckpt.save(round_no + 1, _resume_snapshot())
                    counters["resume_saves"] += 1

            if wreg is not None:
                round_hist.observe(time.monotonic() - round_start)
                if (round_no + 1) % max(spec.telemetry_every, 1) == 0:
                    _publish_telemetry(counters, seq=round_no + 1)

        counters.update(segs.stats())
        if spec.trace_ctx is not None:
            # Final flush AND publish before the done flag: the attach
            # accounting only lands in the counters here.
            _publish_telemetry(counters, seq=spec.epochs + 1)
        done_block[1:] = [counters[name] for name in DONE_FIELDS]
        done_block[0] = 1  # publish last
    except Exception:  # noqa: BLE001 - the coordinator sees the exit code
        # The traceback goes to the inherited stderr; the coordinator
        # detects the nonzero exit through its liveness polling.
        traceback.print_exc()
        log.error("worker %d failed", rank)
        sys.exit(1)
    finally:
        if beat_stop is not None:
            # Stop and JOIN the heartbeat before the segments unmap — a
            # beat landing in a closed mapping would fault the exit path.
            beat_stop.set()
            beat_thread.join(timeout=5.0)
        if injector_installed:
            clear_injector()
        segs.close()


def probe_injector_schedule(result_q, injector, site: str, n_calls: int) -> None:
    """Fire ``n_calls`` at ``site`` and report the action sequence.

    A ``spawn``-safe probe used by the regression tests to assert that a
    pickled-and-rebuilt :class:`repro.resilience.FaultInjector` replays
    the exact schedule the parent process computes (the injector crosses
    the process boundary through its ``__getstate__``).
    """
    from repro.errors import FaultError, TransientError

    actions: list[str] = []
    for _ in range(n_calls):
        try:
            actions.append(injector.fire(site) or "none")
        except TransientError:
            actions.append("transient")
        except FaultError:
            actions.append("permanent")
    result_q.put(actions)
