"""Zero-copy array publication over ``multiprocessing.shared_memory``.

The process-parallel runtime's data plane: the coordinator *publishes*
each large array (the feature matrix, per-shard CSR index arrays, halo
maps) into one named shared-memory segment, and every worker *attaches*
the same physical pages by name. Attaching maps the segment — it never
copies it — so ``k`` workers over an ``n × d`` feature matrix cost one
matrix of RAM, not ``k + 1`` (the pickling a naive ``Process(args=...)``
launch would pay).

Ownership contract (create/attach/unlink):

* the **coordinator** creates segments through :meth:`ShmArena.publish`
  and is the only process allowed to :meth:`ShmArena.unlink` them — it
  does so in a ``finally`` block covering every exit path, including
  worker kills and coordinator timeouts;
* a **worker** attaches by :class:`SharedArrayHandle` (a picklable
  name/shape/dtype descriptor) through :func:`attach_array` /
  :class:`AttachedSegments` and only ever ``close()``-s its mapping —
  unlinking from a worker would yank pages out from under its peers;
* attach-side accounting is explicit: :class:`AttachedSegments` counts
  ``attaches`` and ``mapped_bytes`` and asserts the attached view does
  **not** own its data (``copied_bytes`` stays 0 by construction), which
  is the property the distributed smoke test audits.

The contract is also what makes supervised **respawn** free: because a
segment's lifetime is owned solely by the coordinator, a killed
worker's successor (same rank, bumped generation) simply re-attaches
every segment by the same :class:`SharedArrayHandle` descriptors — the
pages, names, and peer mappings are all exactly where the first
incarnation left them, and a worker death never invalidates the plane.

Python < 3.13 quirk: attaching a segment registers it with the
``resource_tracker`` even though the attacher does not own it (the
opt-out ``track=False`` parameter only exists from 3.13). Here that is
benign *by topology*: ``spawn``-ed workers inherit the coordinator's
tracker process, whose cache is a set — the attach-side re-register of
an already-registered name is a no-op. Do **not** "fix" it by
unregistering on attach: with the shared tracker that would strip the
creator's own registration, so the coordinator's unlink double-removes
(tracker ``KeyError`` spam) and the crash-safety net of tracker-side
cleanup is lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.errors import ConfigError, DistributedError

_LOG = obs.get_logger("repro.distributed.shm")


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of one published array.

    Everything a worker needs to map the array: the segment ``name``,
    the ``shape``, and the dtype string (``np.dtype(dtype_str)``
    round-trips it). Handles travel inside the worker spec; the pages
    themselves never do.
    """

    name: str
    shape: tuple[int, ...]
    dtype_str: str

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.dtype_str)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize


def attach_array(
    handle: SharedArrayHandle, writable: bool = False
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map a published array; returns ``(view, segment)`` — no copy.

    The returned array is a view of the segment's pages
    (``view.flags.owndata`` is ``False``; this is asserted, it is the
    zero-copy guarantee). Read-only by default; ``writable=True`` is for
    coordination cells like the cluster-membership byte array. The
    caller must keep the segment object alive as long as the view and
    ``close()`` it when done — never ``unlink()`` from an attacher.
    """
    try:
        shm = shared_memory.SharedMemory(name=handle.name)
    except FileNotFoundError:
        raise DistributedError(
            f"shared segment {handle.name!r} does not exist "
            "(published by a coordinator that already unlinked it?)"
        ) from None
    view = np.ndarray(handle.shape, dtype=handle.dtype, buffer=shm.buf)
    if view.flags.owndata:  # pragma: no cover - ndarray-on-buffer never owns
        raise DistributedError(
            f"attach of {handle.name!r} produced an owning copy"
        )
    view.setflags(write=writable)
    return view, shm


class AttachedSegments:
    """A worker's book of mapped segments, with zero-copy accounting.

    ``attach`` maps by handle and records ``mapped_bytes`` (pages shared
    with the publisher, not new allocation); ``copied_bytes`` counts
    bytes the worker *duplicated* out of shared pages (local gathers it
    reports explicitly via :meth:`count_copy`). The distributed smoke
    test asserts a worker's ``copied_bytes`` stays well under the
    feature matrix it attached — the zero-copy audit of E34.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.attaches = 0
        self.mapped_bytes = 0
        self.copied_bytes = 0

    def attach(
        self, handle: SharedArrayHandle, writable: bool = False
    ) -> np.ndarray:
        view, shm = attach_array(handle, writable=writable)
        self._segments.append(shm)
        self.attaches += 1
        self.mapped_bytes += handle.nbytes
        return view

    def count_copy(self, array: np.ndarray) -> np.ndarray:
        """Account an explicit local duplication (e.g. a row gather)."""
        self.copied_bytes += int(array.nbytes)
        return array

    def stats(self) -> dict[str, int]:
        return {
            "attaches": self.attaches,
            "mapped_bytes": self.mapped_bytes,
            "copied_bytes": self.copied_bytes,
        }

    def close(self) -> None:
        """Unmap every segment (owner's pages are untouched)."""
        for shm in self._segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - a view still alive
                # Live views pin the mapping; process exit reclaims it.
                pass
        self._segments.clear()


class ShmArena:
    """The coordinator's side: publish named arrays, unlink them all.

    One arena per training run; segment names are
    ``<token>-<key>`` where ``token`` embeds the pid and a counter, so
    concurrent runs on one machine never collide and a post-mortem
    ``ls /dev/shm`` attributes leftovers to their owner (there should
    never be any — :meth:`unlink` is idempotent and runs in the
    coordinator's ``finally``).
    """

    _counter = 0

    def __init__(self, token: str | None = None) -> None:
        if token is None:
            import os

            ShmArena._counter += 1
            token = f"repro-dist-{os.getpid()}-{ShmArena._counter}"
        self.token = token
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._handles: dict[str, SharedArrayHandle] = {}
        self.published_bytes = 0
        self._unlinked = False

    def publish(self, key: str, array: np.ndarray) -> SharedArrayHandle:
        """Copy ``array`` into a fresh segment once; returns its handle."""
        if self._unlinked:
            raise DistributedError("arena already unlinked")
        if key in self._handles:
            raise ConfigError(f"key {key!r} already published")
        array = np.ascontiguousarray(array)
        name = f"{self.token}-{key}"
        nbytes = max(int(array.nbytes), 1)  # zero-size arrays still need a page
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        handle = SharedArrayHandle(name, tuple(array.shape), array.dtype.str)
        self._segments[key] = shm
        self._handles[key] = handle
        self.published_bytes += int(array.nbytes)
        return handle

    def handle(self, key: str) -> SharedArrayHandle:
        return self._handles[key]

    def view(self, key: str, writable: bool = False) -> np.ndarray:
        """The coordinator's own view of a published array."""
        handle = self._handles[key]
        shm = self._segments[key]
        view = np.ndarray(handle.shape, dtype=handle.dtype, buffer=shm.buf)
        view.setflags(write=writable)
        return view

    @property
    def keys(self) -> list[str]:
        return sorted(self._handles)

    def unlink(self) -> None:
        """Close and destroy every segment; idempotent, never raises.

        Runs on *every* coordinator exit path — normal completion,
        worker kills, timeouts, KeyboardInterrupt — so a chaos run can
        never strand pages in ``/dev/shm``.
        """
        if self._unlinked:
            return
        self._unlinked = True
        for key, shm in self._segments.items():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - live coordinator view
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except Exception as exc:  # noqa: BLE001  pragma: no cover
                _LOG.warning("unlink of segment %r failed: %s", key, exc)
        self._segments.clear()
        _LOG.debug("arena %s unlinked (%d bytes)", self.token, self.published_bytes)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmArena({self.token!r}, arrays={len(self._handles)}, "
            f"bytes={self.published_bytes}, unlinked={self._unlinked})"
        )
