"""Process-parallel distributed training over shared-memory shards.

The real counterpart of :func:`repro.training.simulate_distributed_training`:
``spawn``-ed worker processes, one per partition part, attach the
coordinator-published feature matrix and per-shard CSR arrays zero-copy
from ``multiprocessing.shared_memory``, exchange halo feature rows per
cross-partition arc every round, and synchronise parameters through the
coordinator with train-node-weighted averaging — the simulation's
semantics, executed for real. Pick a backend with :func:`get_backend`::

    from repro.distributed import get_backend

    result = get_backend("process").run(graph, split, assignment, 4,
                                        epochs=10)
    assert result.halo_floats_received == \
        result.halo_floats_per_epoch * result.epochs

Passing ``supervise=True`` (or a :class:`LeasePolicy`) to
:meth:`ProcessBackend.run` turns on the self-healing layer: heartbeat
leases, a coordinator :class:`Supervisor` that respawns or evicts
expired ranks, and generation-fenced bit-exact rejoin (see
:mod:`repro.distributed.supervisor`).

See ``DESIGN.md`` ("Process-parallel distributed training" and
"Membership, leases, and self-healing") for the process topology,
shared-segment lifecycle, and halo/lease protocols.
"""

from repro.distributed.backend import (
    BackendResult,
    DistributedBackend,
    ProcessBackend,
    SimulatedBackend,
    get_backend,
)
from repro.distributed.supervisor import LeasePolicy, Supervisor
from repro.distributed.shards import (
    Shard,
    ShardPlan,
    build_shard,
    build_shard_plan,
)
from repro.distributed.shm import (
    AttachedSegments,
    SharedArrayHandle,
    ShmArena,
    attach_array,
)
from repro.distributed.worker import WorkerSpec, worker_main

__all__ = [
    "AttachedSegments",
    "BackendResult",
    "DistributedBackend",
    "LeasePolicy",
    "ProcessBackend",
    "Shard",
    "ShardPlan",
    "SharedArrayHandle",
    "ShmArena",
    "SimulatedBackend",
    "Supervisor",
    "WorkerSpec",
    "attach_array",
    "build_shard",
    "build_shard_plan",
    "get_backend",
    "worker_main",
]
