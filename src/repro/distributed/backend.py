"""Distributed training backends: one interface, simulated and real.

:class:`DistributedBackend` is the common face of partition-parallel
training. Two implementations:

* :class:`SimulatedBackend` — wraps
  :func:`repro.training.simulate_distributed_training`, the in-process
  reference: analytic communication accounting, no processes. This is
  the semantics oracle the real backend is tested against.
* :class:`ProcessBackend` — real ``spawn``-ed worker processes over
  shared-memory graph shards (:mod:`repro.distributed.shm`,
  :mod:`repro.distributed.shards`): the coordinator publishes the
  feature matrix and per-shard CSR arrays once, workers attach
  zero-copy, exchange halo feature rows per cross-partition arc through
  pairwise shared buffers, and synchronise parameters each round with
  averaging weighted by local train-node count — the same semantics the
  simulation defines.

Control plane (all shared memory, no queues — see
:mod:`repro.distributed.worker` for why queues cannot survive a killed
writer): each worker owns a flat ``state`` vector plus a four-cell
meta block ``(round, n_train, failed, generation)``; the coordinator
owns one flat ``params`` vector plus a round cell. A writer always
fills the payload first and advances its round cell last, so a reader
that sees round ``r`` is guaranteed a complete round-``r`` payload.
Worker death is detected by ``Process.is_alive`` polling whenever the
gather stalls; a dead rank's byte in the shared ``alive`` array is
zeroed (the only coordinator-written worker-visible flag), the round's
average is renormalised over the survivors, and peers fall back to
stale ghost rows instead of waiting on the dead rank's halo buffer.

Passing ``supervise=`` to :meth:`ProcessBackend.run` upgrades that
passive tolerance to *active recovery*: per-rank heartbeat leases, a
:class:`~repro.distributed.supervisor.Supervisor` that respawns or
evicts expired ranks under a
:class:`~repro.distributed.supervisor.LeasePolicy`, generation-fenced
rejoin from per-round resume checkpoints, and per-rank recovery-latency
accounting (see :mod:`repro.distributed.supervisor` for the protocol).

Cleanup is unconditional: the arena unlink and worker terminate/kill
sweep run in a ``finally`` that covers normal completion, worker
crashes, chaos kills, and coordinator timeouts — no exit path strands
``/dev/shm`` segments or child processes.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import ConfigError, DistributedError
from repro.utils.validation import check_int_range

_LOG = obs.get_logger("repro.distributed.backend")

#: Coordinator-side spin interval while gathering worker states.
_GATHER_POLL_S = 0.005
#: How often (seconds) the stalled gather re-checks worker liveness.
_LIVENESS_EVERY_S = 0.1


@dataclass(frozen=True)
class BackendResult:
    """Outcome of one distributed run, whichever backend produced it.

    The analytic fields (``halo_floats_per_epoch``,
    ``param_sync_floats_per_round``, ``cross_partition_arcs``) mean the
    same thing for both backends; the measured fields
    (``halo_floats_shipped`` / ``halo_floats_received``, attach
    accounting, wall time) are only non-zero for the process backend —
    in a healthy run ``halo_floats_received`` equals
    ``halo_floats_per_epoch × epochs`` exactly, by the per-arc exchange
    construction.
    """

    backend: str
    test_accuracy: float
    epochs: int
    n_parts: int
    cross_partition_arcs: int
    halo_floats_per_epoch: int
    param_sync_floats_per_round: int
    halo_floats_shipped: int = 0
    halo_floats_received: int = 0
    sync_rounds: int = 0
    worker_failures: int = 0
    straggler_events: int = 0
    degraded_rounds: int = 0
    checkpoint_saves: int = 0
    checkpoint_restores: int = 0
    workers_lost: int = 0
    # active recovery (populated only under supervise=)
    respawns: int = 0
    evictions: int = 0
    leases_expired: int = 0
    fenced_writes: int = 0
    recovery_latency_s: float = 0.0
    #: SHA-256 of the final averaged parameter vector's bytes — the
    #: bit-identity witness the self-healing tests compare across runs.
    param_checksum: str = ""
    wall_time_s: float = 0.0
    attach_stats: dict = field(default_factory=dict)
    recovery: str = "reweight"
    # telemetry (populated only when the process backend runs with the
    # repro.obs.telemetry plane enabled)
    trace_id: str | None = None
    trace: dict | None = None
    rank_metrics: dict = field(default_factory=dict)
    cluster_snapshot: dict = field(default_factory=dict)
    span_log_dir: str | None = None


class DistributedBackend:
    """Common interface over simulated and process-parallel training."""

    name = "abstract"

    def run(
        self,
        graph,
        split,
        assignment: np.ndarray,
        n_parts: int,
        **kwargs,
    ) -> BackendResult:
        raise NotImplementedError


class SimulatedBackend(DistributedBackend):
    """The in-process reference backend (analytic communication)."""

    name = "simulated"

    def run(
        self,
        graph,
        split,
        assignment: np.ndarray,
        n_parts: int,
        **kwargs,
    ) -> BackendResult:
        from repro.training.distributed import simulate_distributed_training

        start = time.monotonic()
        sim = simulate_distributed_training(
            graph, split, assignment, n_parts, **kwargs
        )
        return BackendResult(
            backend=self.name,
            test_accuracy=sim.test_accuracy,
            epochs=int(kwargs.get("epochs", 50)),
            n_parts=int(n_parts),
            cross_partition_arcs=sim.cross_partition_arcs,
            halo_floats_per_epoch=sim.halo_floats_per_epoch,
            param_sync_floats_per_round=sim.param_sync_floats_per_round,
            worker_failures=sim.worker_failures,
            straggler_events=sim.straggler_events,
            degraded_rounds=sim.degraded_rounds,
            checkpoint_restores=sim.checkpoint_restores,
            wall_time_s=time.monotonic() - start,
            recovery=sim.recovery,
        )


class ProcessBackend(DistributedBackend):
    """Real process-parallel training over shared-memory shards.

    Instances are reusable across runs and double as an
    :class:`repro.obs` stats source (``distributed.backend.*``
    counters: halo floats shipped/received, sync rounds, segment
    attaches, workers lost).
    """

    name = "process"

    def __init__(self) -> None:
        self._counters = {
            "runs": 0,
            "halo_floats_shipped": 0,
            "halo_floats_received": 0,
            "sync_rounds": 0,
            "attaches": 0,
            "workers_lost": 0,
            "respawns": 0,
            "evictions": 0,
        }
        #: The merged per-rank metrics view of the most recent
        #: telemetry-enabled run (a ClusterMetrics, or None).
        self.last_cluster = None
        obs.register_source("distributed.backend", self)

    # ------------------------------------------------------------------ #
    # StatsSource protocol
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        return dict(self._counters)

    def reset(self) -> None:
        for key in self._counters:
            self._counters[key] = 0

    # ------------------------------------------------------------------ #

    def run(
        self,
        graph,
        split,
        assignment: np.ndarray,
        n_parts: int,
        epochs: int = 20,
        hidden: int = 32,
        lr: float = 0.01,
        weight_decay: float = 5e-4,
        dropout: float = 0.3,
        seed: int = 0,
        fault_plan=None,
        fault_seed: int = 0,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        timeout_s: float = 300.0,
        round_hook=None,
        supervise=None,
        resume_dir: str | None = None,
        telemetry: bool | None = None,
        telemetry_dir: str | None = None,
    ) -> BackendResult:
        """Train for ``epochs`` synchronous rounds over ``n_parts`` workers.

        ``fault_plan`` (a picklable :class:`repro.resilience.FaultPlan`)
        is shipped to every worker and rebuilt locally with seed
        ``fault_seed + rank``. ``round_hook(round_no, processes)``, when
        given, runs in the coordinator at the top of every round — the
        chaos tests use it to kill workers mid-run. ``timeout_s`` bounds
        the whole run; exceeding it tears everything down and raises
        :class:`repro.errors.DistributedError`.

        ``supervise`` switches active recovery on: ``True`` runs a
        :class:`~repro.distributed.supervisor.Supervisor` under the
        default :class:`~repro.distributed.supervisor.LeasePolicy`, a
        ``LeasePolicy`` instance tunes it, ``None``/``False`` keep the
        passive renormalise-over-survivors behaviour. When supervised,
        every worker heartbeats a lease cell and saves a per-round
        resume checkpoint under ``resume_dir`` (a per-run temporary
        directory when not given — pass a fresh directory per run, stale
        snapshots from an earlier run would poison a rejoin); a rank
        whose lease expires or whose process dies is respawned with a
        bumped generation (fencing) token and rejoins bit-exactly.

        ``telemetry`` switches the :mod:`repro.obs.telemetry` plane —
        ``None`` follows the process-global ``obs.enabled()`` flag. When
        on, a :class:`~repro.obs.telemetry.TraceContext` minted from the
        coordinator's ``distributed.run`` span rides inside every
        ``WorkerSpec``, each rank streams spans to
        ``<telemetry_dir>/rank<r>.jsonl`` and publishes its metrics
        registry through a kill-safe shm cell per round; the result then
        carries the assembled cross-process ``trace`` and the merged
        ``cluster_snapshot`` (a chaos-killed rank's last published
        counters included).
        """
        import dataclasses

        from repro.distributed.shards import build_shard_plan
        from repro.distributed.supervisor import (
            LEASE_CELLS,
            LEASE_ROUND,
            LeasePolicy,
            Supervisor,
        )
        from repro.distributed.worker import (
            DONE_FIELDS,
            META_CELLS,
            META_GENERATION,
            META_ROUND,
            WorkerSpec,
            flatten_state,
            unflatten_state,
            worker_main,
        )
        from repro.models.gcn import GCN
        from repro.tensor.autograd import no_grad
        from repro.training.metrics import accuracy

        if graph.x is None or graph.y is None:
            raise ConfigError("graph needs features and labels")
        check_int_range("n_parts", n_parts, 1)
        check_int_range("epochs", epochs, 1)
        assignment = np.asarray(assignment, dtype=np.int64)

        if supervise is None or supervise is False:
            policy = None
        elif supervise is True:
            policy = LeasePolicy()
        elif isinstance(supervise, LeasePolicy):
            policy = supervise
        else:
            raise ConfigError(
                "supervise takes None, a bool, or a LeasePolicy, "
                f"got {type(supervise).__name__}"
            )

        with obs.span("distributed.plan", n_parts=n_parts):
            plan = build_shard_plan(graph, assignment, n_parts)
        feature_dim = graph.x.shape[1]
        n_classes = graph.n_classes
        train_mask = np.zeros(graph.n_nodes, dtype=bool)
        train_mask[split.train] = True

        model = GCN(
            feature_dim, hidden, n_classes,
            n_layers=2, dropout=dropout, seed=seed,
        )
        n_params = model.n_parameters()
        template = model.state_dict()
        init_flat = flatten_state(template)

        from repro.distributed.shm import ShmArena

        start = time.monotonic()
        deadline = start + float(timeout_s)
        ctx = mp.get_context("spawn")
        arena = ShmArena()
        processes: list = []
        alive_view = None
        supervisor = None

        # Resume checkpoints need a directory; a supervised run without
        # one gets a per-run tempdir, removed in the finally sweep.
        resume_root = resume_dir
        made_resume_dir = False
        if policy is not None and resume_root is None:
            import tempfile

            resume_root = tempfile.mkdtemp(prefix="repro-dist-resume-")
            made_resume_dir = True

        # ---- telemetry plane (None follows the global obs switch) ------
        telemetry_enabled = (
            obs.OBS.enabled if telemetry is None else bool(telemetry)
        )
        tele = None
        cluster = None
        tctx = None
        tele_dir = None
        metrics_views: list = []
        dead_ranks: set[int] = set()
        if telemetry_enabled:
            import tempfile

            from repro.obs import telemetry as tele

            if not obs.OBS.enabled:
                obs.configure(enabled=True)
            tele_dir = Path(
                telemetry_dir
                or tempfile.mkdtemp(prefix="repro-telemetry-")
            )
            tele_dir.mkdir(parents=True, exist_ok=True)
            cluster = tele.ClusterMetrics()
            # Strong ref on the backend: register_source keeps only a
            # weakref, and the cluster view must outlive run() so the
            # coordinator's snapshot() still answers after a chaos kill.
            self.last_cluster = cluster
            obs.register_source("cluster", cluster)

        def _harvest_metrics() -> None:
            """Fold every rank's newest published registry dump into the
            cluster view — including a chaos-killed rank's last complete
            publication (the seq-last protocol guarantees it is whole)."""
            if cluster is None:
                return
            for p, (buf, meta) in enumerate(metrics_views):
                seq, blob = tele.read_blob(buf, meta)
                if blob is None:
                    continue
                payload = tele.decode_payload(blob)
                if payload is not None:
                    cluster.ingest(
                        p, payload, seq=seq, live=p not in dead_ranks
                    )

        # The run span is the coordinator anchor every rank's span tree
        # grafts under at assembly (a no-op NullSpan while obs is off).
        run_cm = obs.span(
            "distributed.run", n_parts=int(n_parts), backend=self.name
        )
        run_span = run_cm.__enter__()
        run_open = True
        if telemetry_enabled:
            tctx = tele.TraceContext.from_span(run_span, backend=self.name)
        try:
            # ---- publish the data + control plane once -----------------
            with obs.span("distributed.publish"):
                handles = {
                    "x": arena.publish("x", np.ascontiguousarray(graph.x)),
                    "y": arena.publish("y", graph.y.astype(np.int64)),
                    "train_mask": arena.publish("train-mask", train_mask),
                    "alive": arena.publish(
                        "alive", np.ones(n_parts, dtype=np.uint8)
                    ),
                    "params": arena.publish("params", init_flat),
                    "params_round": arena.publish(
                        "params-round", np.full(1, -1, dtype=np.int64)
                    ),
                }
                shard_handles = []
                for p, shard in enumerate(plan.shards):
                    sh = {
                        "indptr": arena.publish(f"s{p}-indptr", shard.indptr),
                        "indices": arena.publish(f"s{p}-indices", shard.indices),
                        "weights": arena.publish(f"s{p}-weights", shard.weights),
                        "owned": arena.publish(f"s{p}-owned", shard.owned),
                        "ghosts": arena.publish(f"s{p}-ghosts", shard.ghosts),
                        "send": {
                            q: arena.publish(f"s{p}-send-{q}", idx)
                            for q, idx in shard.send.items()
                        },
                        "recv": {
                            q: arena.publish(f"s{p}-recv-{q}", idx)
                            for q, idx in shard.recv.items()
                        },
                        "state": arena.publish(
                            f"state-{p}", np.zeros_like(init_flat)
                        ),
                        # [round, n_train, failed, generation]; the
                        # round cell starts unpublished.
                        "state_meta": arena.publish(
                            f"state-meta-{p}",
                            np.array(
                                [-1] + [0] * (META_CELLS - 1),
                                dtype=np.int64,
                            ),
                        ),
                        "done": arena.publish(
                            f"done-{p}",
                            np.zeros(1 + len(DONE_FIELDS), dtype=np.int64),
                        ),
                    }
                    shard_handles.append(sh)
                # Pairwise halo buffers: payload (arcs × dim) + round cell,
                # writer-owned on the source side.
                halo_handles: dict[tuple[int, int], tuple] = {}
                for p, shard in enumerate(plan.shards):
                    for q, idx in shard.send.items():
                        halo_handles[(p, q)] = (
                            arena.publish(
                                f"halo-{p}-{q}",
                                np.zeros((len(idx), feature_dim)),
                            ),
                            arena.publish(
                                f"halo-{p}-{q}-round",
                                np.full(1, -1, dtype=np.int64),
                            ),
                        )
                # Per-rank heartbeat lease cells (supervised runs only):
                # written payload-first sequence-last by each worker's
                # heartbeat thread, read by the Supervisor.
                lease_handles: list = []
                if policy is not None:
                    for p in range(n_parts):
                        cell = np.zeros(LEASE_CELLS, dtype=np.int64)
                        cell[LEASE_ROUND] = -1
                        lease_handles.append(
                            arena.publish(f"lease-{p}", cell)
                        )
                # Per-rank metrics cells: payload segment + (seq, length)
                # meta, written payload-first seq-last by the worker.
                metrics_handles: list[tuple] = []
                if telemetry_enabled:
                    for p in range(n_parts):
                        metrics_handles.append((
                            arena.publish(
                                f"metrics-{p}",
                                np.zeros(
                                    tele.METRICS_SEGMENT_BYTES,
                                    dtype=np.uint8,
                                ),
                            ),
                            arena.publish(
                                f"metrics-meta-{p}",
                                np.array([-1, 0], dtype=np.int64),
                            ),
                        ))
            alive_view = arena.view("alive", writable=True)
            params_view = arena.view("params", writable=True)
            params_round = arena.view("params-round", writable=True)
            metas = [arena.view(f"state-meta-{p}") for p in range(n_parts)]
            states = [arena.view(f"state-{p}") for p in range(n_parts)]
            dones = [arena.view(f"done-{p}") for p in range(n_parts)]
            leases = (
                [arena.view(f"lease-{p}") for p in range(n_parts)]
                if policy is not None else None
            )
            if telemetry_enabled:
                metrics_views.extend(
                    (
                        arena.view(f"metrics-{p}"),
                        arena.view(f"metrics-meta-{p}"),
                    )
                    for p in range(n_parts)
                )

            # ---- launch ------------------------------------------------
            import repro

            package_root = str(Path(repro.__file__).resolve().parent.parent)
            specs: list[WorkerSpec] = []
            for p, shard in enumerate(plan.shards):
                sh = shard_handles[p]
                spec = WorkerSpec(
                    rank=p,
                    n_parts=n_parts,
                    epochs=epochs,
                    hidden=hidden,
                    lr=lr,
                    weight_decay=weight_decay,
                    dropout=dropout,
                    seed=seed + 1 + p,
                    n_classes=n_classes,
                    directed=shard.directed,
                    x=handles["x"],
                    y=handles["y"],
                    train_mask=handles["train_mask"],
                    alive=handles["alive"],
                    indptr=sh["indptr"],
                    indices=sh["indices"],
                    weights=sh["weights"],
                    owned=sh["owned"],
                    ghosts=sh["ghosts"],
                    send=sh["send"],
                    recv=sh["recv"],
                    halo_out={q: halo_handles[(p, q)] for q in shard.send},
                    halo_in={q: halo_handles[(q, p)] for q in shard.recv},
                    params=handles["params"],
                    params_round=handles["params_round"],
                    state=sh["state"],
                    state_meta=sh["state_meta"],
                    done=sh["done"],
                    fault_plan=fault_plan,
                    fault_seed=fault_seed,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every,
                    generation=0,
                    lease=(
                        lease_handles[p] if policy is not None else None
                    ),
                    beat_interval_s=(
                        policy.beat_interval_s if policy is not None
                        else 0.05
                    ),
                    resume=False,
                    resume_dir=resume_root,
                    sync_timeout_s=float(timeout_s),
                    package_root=package_root,
                    trace_ctx=(
                        tctx.to_dict() if tctx is not None else None
                    ),
                    span_log_path=(
                        str(tele_dir / f"rank{p}.jsonl")
                        if tele_dir is not None
                        else None
                    ),
                    metrics=(
                        metrics_handles[p][0] if telemetry_enabled else None
                    ),
                    metrics_meta=(
                        metrics_handles[p][1] if telemetry_enabled else None
                    ),
                )
                specs.append(spec)
                proc = ctx.Process(
                    target=worker_main,
                    args=(spec,),
                    daemon=True,
                    name=f"repro-dist-w{p}",
                )
                proc.start()
                processes.append(proc)

            # ---- synchronous rounds ------------------------------------
            expected = set(range(n_parts))
            totals = {
                "worker_failures": 0,
                "straggler_events": 0,
                "degraded_rounds": 0,
                "sync_rounds": 0,
                "workers_lost": 0,
                "checkpoint_saves": 0,
                "halo_floats_shipped": 0,
                "halo_floats_received": 0,
            }
            attach_stats = {"attaches": 0, "mapped_bytes": 0, "copied_bytes": 0}
            averaged_flat = init_flat.copy()

            def _mark_dead(rank: int, why: str) -> None:
                if rank in expected:
                    expected.discard(rank)
                    alive_view[rank] = 0
                    totals["workers_lost"] += 1
                    dead_ranks.add(rank)
                    if cluster is not None:
                        cluster.mark_dead(rank)
                    _LOG.warning("worker %d lost (%s)", rank, why)

            def _reap() -> None:
                for rank in list(expected):
                    if not processes[rank].is_alive():
                        _mark_dead(rank, "process died")

            if policy is not None:
                metas_w = [
                    arena.view(f"state-meta-{p}", writable=True)
                    for p in range(n_parts)
                ]

                def _relaunch(rank: int, generation: int):
                    # The previous incarnation is confirmed dead by the
                    # supervisor before this runs, so wiping its round
                    # cell races nothing: whatever it last published is
                    # void, and the successor is the segment's only
                    # writer from here on.
                    metas_w[rank][META_ROUND] = -1
                    spec = dataclasses.replace(
                        specs[rank], generation=generation, resume=True
                    )
                    specs[rank] = spec
                    proc = ctx.Process(
                        target=worker_main,
                        args=(spec,),
                        daemon=True,
                        name=f"repro-dist-w{rank}g{generation}",
                    )
                    proc.start()
                    return proc

                supervisor = Supervisor(
                    policy,
                    n_parts,
                    processes=processes,
                    leases=leases,
                    relaunch=_relaunch,
                    on_evict=_mark_dead,
                )

            def _check_membership(
                round_no: int, skip: set = frozenset()
            ) -> None:
                if supervisor is not None:
                    supervisor.poll(round_no, skip=skip)
                else:
                    _reap()

            def _liveness_report(round_no: int) -> str:
                """Per-rank heartbeat/progress detail for timeout errors."""
                lines = []
                diags = (
                    supervisor.diagnostics()
                    if supervisor is not None else None
                )
                for rank in range(n_parts):
                    status = (
                        "alive" if processes[rank].is_alive() else "dead"
                    )
                    last_round = int(metas[rank][META_ROUND])
                    if diags is not None:
                        age = diags[rank]["beat_age_s"]
                        beat = (
                            f"last heartbeat {age:.2f}s ago"
                            if age is not None
                            else "no heartbeat observed"
                        )
                        extra = (
                            f", generation {diags[rank]['generation']}"
                            f", {beat}"
                        )
                    else:
                        extra = ", no lease plane (supervise off)"
                    lines.append(
                        f"rank {rank}: {status}, last published round "
                        f"{last_round}{extra}"
                    )
                return (
                    f"at round {round_no}: " + "; ".join(lines)
                )

            for round_no in range(epochs):
                if round_hook is not None:
                    round_hook(round_no, processes)
                contributions: dict[int, tuple[np.ndarray | None, int]] = {}
                next_liveness = time.monotonic()
                while expected - set(contributions):
                    if time.monotonic() > deadline:
                        raise DistributedError(
                            f"distributed run exceeded {timeout_s}s "
                            + _liveness_report(round_no)
                        )
                    progressed = False
                    for rank in expected - set(contributions):
                        meta = metas[rank]
                        if meta[0] == round_no:
                            if supervisor is not None:
                                # Fencing: only the rank's current
                                # incarnation may contribute — a stale
                                # generation's publication is discarded,
                                # never averaged in.
                                generation = int(meta[META_GENERATION])
                                if not supervisor.fence_accepts(
                                    rank, generation
                                ):
                                    supervisor.note_fenced_write(
                                        rank, round_no, generation
                                    )
                                    continue
                                supervisor.note_rejoin(rank, round_no)
                            failed = bool(meta[2])
                            if failed:
                                totals["worker_failures"] += 1
                                contributions[rank] = (None, 0)
                            else:
                                # Copy now: the worker may overwrite its
                                # vector as soon as the next round opens.
                                contributions[rank] = (
                                    states[rank].copy(), int(meta[1])
                                )
                            progressed = True
                    if progressed:
                        continue
                    if time.monotonic() >= next_liveness:
                        _check_membership(round_no)
                        next_liveness = time.monotonic() + _LIVENESS_EVERY_S
                    time.sleep(_GATHER_POLL_S)
                if not expected:
                    raise DistributedError(
                        f"all workers lost by round {round_no}"
                    )
                # Weighted averaging over surviving, non-failed
                # contributions — weights are local train-node counts,
                # renormalised over contributors (simulation semantics).
                # Fixed rank order: contributions land in arrival order,
                # and float accumulation is not commutative in rounding —
                # summing in arrival order would make the averaged params
                # (and the bit-identity fencing guarantee) racy.
                live = [
                    (vec, n_train)
                    for rank, (vec, n_train) in sorted(contributions.items())
                    if rank in expected and vec is not None and n_train > 0
                ]
                if len(contributions) < n_parts or any(
                    vec is None for vec, _ in contributions.values()
                ):
                    totals["degraded_rounds"] += 1
                total_weight = sum(n_train for _, n_train in live)
                if total_weight > 0:
                    averaged_flat = sum(
                        (n_train / total_weight) * vec for vec, n_train in live
                    )
                params_view[:] = averaged_flat
                params_round[0] = round_no  # publish last
                totals["sync_rounds"] += 1

            # ---- final reports -----------------------------------------
            reported: set[int] = set()
            while expected - reported:
                if time.monotonic() > deadline:
                    raise DistributedError(
                        "timed out waiting for worker reports "
                        f"({sorted(expected - reported)} missing) "
                        + _liveness_report(epochs)
                    )
                for rank in list(expected - reported):
                    # Check the done flag BEFORE liveness: a worker that
                    # finished, published its block, and exited is
                    # reported, not lost.
                    if dones[rank][0] == 1:
                        counters = dict(zip(DONE_FIELDS, dones[rank][1:]))
                        totals["straggler_events"] += counters["stragglers"]
                        totals["checkpoint_saves"] += counters["checkpoint_saves"]
                        totals["halo_floats_shipped"] += counters[
                            "halo_floats_shipped"
                        ]
                        totals["halo_floats_received"] += counters[
                            "halo_floats_received"
                        ]
                        for key in attach_stats:
                            attach_stats[key] += counters[key]
                        reported.add(rank)
                    elif supervisor is None and not processes[rank].is_alive():
                        _mark_dead(rank, "died before reporting")
                if supervisor is not None:
                    # A rank killed between its last sync and its report
                    # is respawned like any other: the successor resumes
                    # past every completed round and reports directly.
                    # Ranks whose done flag is already up exited cleanly
                    # and are exempt, reported or not yet.
                    done_up = {
                        r for r in range(n_parts) if dones[r][0] == 1
                    }
                    _check_membership(epochs, skip=reported | done_up)
                time.sleep(_GATHER_POLL_S)
            for proc in processes:
                proc.join(timeout=5.0)

            # ---- final model: evaluate on the full graph ---------------
            model.load_state_dict(unflatten_state(averaged_flat, template))
            model.eval()
            with obs.span("distributed.eval"), no_grad():
                logits = model(GCN.prepare(graph), graph.x).data
            test_acc = accuracy(
                logits[split.test].argmax(axis=1), graph.y[split.test]
            )

            self._counters["runs"] += 1
            for key in (
                "halo_floats_shipped", "halo_floats_received",
                "sync_rounds", "workers_lost",
            ):
                self._counters[key] += totals[key]
            self._counters["attaches"] += attach_stats["attaches"]
            if supervisor is not None:
                sup_now = supervisor.snapshot()
                self._counters["respawns"] += int(sup_now["respawns"])
                self._counters["evictions"] += int(sup_now["evictions"])
            if obs.OBS.enabled:
                reg = obs.OBS.registry
                reg.counter("distributed.halo_floats_shipped").inc(
                    totals["halo_floats_shipped"]
                )
                reg.counter("distributed.sync_rounds").inc(
                    totals["sync_rounds"]
                )
                reg.counter("distributed.attaches").inc(
                    attach_stats["attaches"]
                )

            # ---- telemetry: harvest + assemble the cross-process trace -
            telemetry_fields: dict = {}
            if telemetry_enabled:
                run_cm.__exit__(None, None, None)
                run_open = False
                _harvest_metrics()
                span_paths = sorted(tele_dir.glob("rank*.jsonl"))
                assembled = tele.assemble_trace(
                    run_span, span_paths, trace_id=tctx.trace_id
                )
                telemetry_fields = {
                    "trace_id": tctx.trace_id,
                    "trace": assembled.to_dict(),
                    "rank_metrics": cluster.payloads(),
                    "cluster_snapshot": cluster.snapshot(),
                    "span_log_dir": str(tele_dir),
                }

            supervisor_fields: dict = {}
            if supervisor is not None:
                sup = supervisor.snapshot()
                supervisor_fields = {
                    "respawns": int(sup["respawns"]),
                    "evictions": int(sup["evictions"]),
                    "leases_expired": int(sup["leases_expired"]),
                    "fenced_writes": int(sup["fenced_writes"]),
                    "recovery_latency_s": float(
                        sup["recovery_latency_s_max"]
                    ),
                    "recovery": "supervised",
                }

            import hashlib

            return BackendResult(
                backend=self.name,
                test_accuracy=test_acc,
                epochs=int(epochs),
                n_parts=int(n_parts),
                cross_partition_arcs=plan.cross_arcs_total,
                halo_floats_per_epoch=plan.halo_floats_per_epoch(feature_dim),
                param_sync_floats_per_round=2 * n_params * n_parts,
                halo_floats_shipped=totals["halo_floats_shipped"],
                halo_floats_received=totals["halo_floats_received"],
                sync_rounds=totals["sync_rounds"],
                worker_failures=totals["worker_failures"],
                straggler_events=totals["straggler_events"],
                degraded_rounds=totals["degraded_rounds"],
                checkpoint_saves=totals["checkpoint_saves"],
                workers_lost=totals["workers_lost"],
                param_checksum=hashlib.sha256(
                    np.ascontiguousarray(averaged_flat).tobytes()
                ).hexdigest(),
                wall_time_s=time.monotonic() - start,
                attach_stats=dict(
                    attach_stats, published_bytes=arena.published_bytes
                ),
                **supervisor_fields,
                **telemetry_fields,
            )
        finally:
            # Unconditional teardown: every exit path (completion, chaos
            # kill, timeout, KeyboardInterrupt) unlinks the arena and
            # reaps the children.
            if run_open:
                run_cm.__exit__(None, None, None)
            if telemetry_enabled:
                # Failure paths still fold the last published rank
                # counters into the registered "cluster" source before
                # the segments are unlinked below.
                try:
                    _harvest_metrics()
                except Exception:  # pragma: no cover - defensive
                    _LOG.exception("telemetry harvest failed during teardown")
            if alive_view is not None:
                alive_view[:] = 0
                del alive_view  # release the buffer before unlink
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for proc in processes:
                if proc.is_alive():
                    proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck child
                    proc.kill()
                    proc.join(timeout=1.0)
            arena.unlink()
            if made_resume_dir:
                import shutil

                shutil.rmtree(resume_root, ignore_errors=True)


_BACKENDS = {
    "simulated": SimulatedBackend,
    "process": ProcessBackend,
}


def get_backend(name: str) -> DistributedBackend:
    """Instantiate a backend by name (``"simulated"`` or ``"process"``)."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown distributed backend {name!r}; "
            f"choose from {sorted(_BACKENDS)}"
        ) from None
    return cls()
