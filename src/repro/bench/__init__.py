"""Benchmark harness utilities: memory accounting and table formatting."""

from repro.bench.memory import (
    decoupled_batch_floats,
    full_batch_training_floats,
    sampled_batch_training_floats,
    subgraph_batch_training_floats,
)
from repro.bench.tables import Table, format_bytes, format_seconds

__all__ = [
    "full_batch_training_floats",
    "sampled_batch_training_floats",
    "subgraph_batch_training_floats",
    "decoupled_batch_floats",
    "Table",
    "format_bytes",
    "format_seconds",
]
