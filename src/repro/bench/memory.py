"""Analytic accelerator-memory accounting.

The tutorial's "Limited Memory" challenge (§3.1.3) is about what must be
resident on the training device per step: the activations of every layer
(kept for backward) plus the propagated graph structure of the batch. With
no GPU in this reproduction, we *count floats* instead of allocating them —
the counts are exact for the dense activations that dominate, and they
reproduce the who-fits/who-doesn't ordering (benchmark E4).

All functions return float counts; multiply by 8 for float64 bytes.
"""

from __future__ import annotations

from typing import Sequence

from repro.editing.sampling import Block
from repro.utils.validation import check_int_range


def _layer_dims(in_features: int, hidden: int, n_classes: int, n_layers: int) -> list[int]:
    return [in_features] + [hidden] * (n_layers - 1) + [n_classes]


def full_batch_training_floats(
    n_nodes: int, n_arcs: int, in_features: int, hidden: int,
    n_classes: int, n_layers: int = 2,
) -> int:
    """Residency of one full-batch GCN step.

    Input + every layer's activations over *all* nodes (stored for
    backward) + the sparse operator (one weight + one index pair ≈ 3 values
    per arc).
    """
    check_int_range("n_nodes", n_nodes, 1)
    dims = _layer_dims(in_features, hidden, n_classes, n_layers)
    activations = sum(n_nodes * d for d in dims)
    operator = 3 * n_arcs
    return activations + operator


def sampled_batch_training_floats(
    blocks: Sequence[Block], in_features: int, hidden: int,
    n_classes: int,
) -> int:
    """Residency of one sampled-block step: per-layer src activations."""
    dims = _layer_dims(in_features, hidden, n_classes, len(blocks))
    total = blocks[0].n_src * dims[0]
    for i, block in enumerate(blocks):
        total += block.n_dst * dims[i + 1]
        total += 3 * block.matrix.nnz
    return total


def subgraph_batch_training_floats(
    batch_nodes: int, batch_arcs: int, in_features: int, hidden: int,
    n_classes: int, n_layers: int = 2,
) -> int:
    """Residency of one Cluster-GCN/GraphSAINT step (a small full batch)."""
    return full_batch_training_floats(
        batch_nodes, batch_arcs, in_features, hidden, n_classes, n_layers
    )


def decoupled_batch_floats(
    batch_size: int, embedding_dim: int, hidden: int, n_classes: int,
    n_layers: int = 2,
) -> int:
    """Residency of one decoupled-MLP step: only the batch rows.

    No graph structure at all is resident — the decoupled family's memory
    story in one line.
    """
    dims = _layer_dims(embedding_dim, hidden, n_classes, n_layers)
    return sum(batch_size * d for d in dims)
