"""Plain-text result tables shared by every benchmark script.

Benchmarks print the same kind of aligned table the paper's figures would
tabulate; :meth:`Table.render` is deterministic so bench output can be
diffed across runs.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ShapeError


def format_seconds(seconds: float) -> str:
    """Human-oriented duration: µs/ms/s with three significant digits."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def format_bytes(n_bytes: float) -> str:
    """Human-oriented size in B/KiB/MiB/GiB."""
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB"):
        if value < 1024:
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.2f}GiB"


class Table:
    """A fixed-column text table.

    >>> t = Table("demo", ["a", "b"])
    >>> t.add_row(1, "x")
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    a | b
    --+--
    1 | x
    """

    def __init__(self, title: str, columns: list[str]) -> None:
        if not columns:
            raise ShapeError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ShapeError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([self._fmt(v) for v in values])

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        widths = [
            max(len(col), *(len(r[i]) for r in self.rows)) if self.rows else len(col)
            for i, col in enumerate(self.columns)
        ]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in self.rows
        ]
        return "\n".join([self.title, header, rule, *body])

    def to_csv(self, path: str | Path) -> None:
        lines = [",".join(self.columns)]
        lines += [",".join(row) for row in self.rows]
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
