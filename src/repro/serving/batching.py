"""Micro-batch coalescing of single-node inference requests.

The decoupled-model serving path is embarrassingly batchable: a prediction
is a dense row gather plus an MLP forward, so the per-request fixed cost
(Python dispatch, tensor wrapping) dominates single-node calls. The
:class:`BatchingQueue` coalesces requests under the classic two-knob
policy — emit a batch when it reaches ``max_batch`` *or* when its oldest
request has waited ``max_wait_s`` — and bounds the queue at ``max_queue``
for admission control: a full queue sheds new arrivals immediately
(:class:`repro.errors.LoadSheddingError`) instead of growing tail latency
without bound.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import LoadSheddingError
from repro.utils.concurrency import NULL_LOCK, make_lock
from repro.utils.validation import check_int_range, check_positive


@dataclass(frozen=True)
class PredictRequest:
    """One enqueued single-node prediction request."""

    request_id: int
    node_id: int
    model_key: str
    enqueued_at: float


class BatchingQueue:
    """FIFO queue that coalesces requests into per-model micro-batches.

    Parameters
    ----------
    max_batch:
        Largest batch ever emitted.
    max_wait_s:
        A batch is considered ready once its oldest request has waited
        this long, even if smaller than ``max_batch`` (latency bound).
    max_queue:
        Admission-control bound; :meth:`submit` raises
        :class:`LoadSheddingError` when the queue is full.
    clock:
        Injectable monotonic clock (seconds) for deterministic tests.
    threadsafe:
        Guard submit/pop with a reentrant lock so producer threads and a
        batcher thread share the queue safely. Defaults to ``False`` —
        the single-threaded :class:`~repro.serving.engine.ServingEngine`
        path stays lock-free; :class:`~repro.serving.runtime.ServingRuntime`
        constructs its engine with ``threadsafe=True``.
    """

    def __init__(
        self,
        max_batch: int = 64,
        max_wait_s: float = 0.002,
        max_queue: int = 4096,
        clock: Callable[[], float] = time.monotonic,
        threadsafe: bool = False,
    ) -> None:
        check_int_range("max_batch", max_batch, 1)
        check_int_range("max_queue", max_queue, 1)
        check_positive("max_wait_s", max_wait_s, strict=False)
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self._clock = clock
        self._lock = make_lock(threadsafe)
        self._queue: deque[PredictRequest] = deque()
        self._next_id = 0
        self.submitted = 0
        self.shed = 0
        self.batches_formed = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------ #

    def submit(self, node_id: int, model_key: str) -> PredictRequest:
        """Enqueue a request; sheds (raises) when the queue is full."""
        if self._lock is None:
            return self._submit(node_id, model_key)
        with self._lock:
            return self._submit(node_id, model_key)

    def _submit(self, node_id: int, model_key: str) -> PredictRequest:
        if len(self._queue) >= self.max_queue:
            self.shed += 1
            raise LoadSheddingError(
                f"queue full ({self.max_queue} pending); request for node "
                f"{node_id} shed"
            )
        request = PredictRequest(
            request_id=self._next_id,
            node_id=int(node_id),
            model_key=model_key,
            enqueued_at=self._clock(),
        )
        self._next_id += 1
        self._queue.append(request)
        self.submitted += 1
        return request

    def ready(self, now: float | None = None) -> bool:
        """Whether a batch should be emitted under the max-batch/max-wait policy.

        Lock-free even when the queue is thread-safe: it peeks a single
        deque slot (atomic under the GIL) and a stale answer only means
        the caller polls again — :meth:`next_batch` re-checks under the
        lock before popping anything.
        """
        try:
            oldest = self._queue[0]
        except IndexError:
            return False
        if len(self._queue) >= self.max_batch:
            return True
        now = self._clock() if now is None else now
        return now - oldest.enqueued_at >= self.max_wait_s

    def oldest_age(self, now: float | None = None) -> float | None:
        """Seconds the oldest pending request has waited; ``None`` if empty.

        The batcher thread uses this to compute how long it may sleep
        before the max-wait deadline of the current head request.
        """
        try:
            oldest = self._queue[0]
        except IndexError:
            return None
        now = self._clock() if now is None else now
        return now - oldest.enqueued_at

    def next_batch(
        self, now: float | None = None, force: bool = False
    ) -> list[PredictRequest]:
        """Pop the next micro-batch (possibly empty if nothing is ready).

        Batches are homogeneous in model: the batch is formed from the
        oldest request's model key, scanning FIFO and skipping requests
        for other models (they keep their queue position and seniority).
        """
        if self._lock is None:
            return self._next_batch(now, force)
        with self._lock:
            return self._next_batch(now, force)

    def _next_batch(
        self, now: float | None, force: bool
    ) -> list[PredictRequest]:
        if not self._queue or (not force and not self.ready(now)):
            return []
        target = self._queue[0].model_key
        batch: list[PredictRequest] = []
        kept: deque[PredictRequest] = deque()
        while self._queue:
            request = self._queue.popleft()
            if request.model_key == target and len(batch) < self.max_batch:
                batch.append(request)
            else:
                kept.append(request)
        self._queue = kept
        self.batches_formed += 1
        self.batched_requests += len(batch)
        return batch

    def drain(self) -> Iterator[list[PredictRequest]]:
        """Force-emit batches until the queue is empty."""
        while self._queue:
            yield self.next_batch(force=True)

    # ------------------------------------------------------------------ #

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches_formed if self.batches_formed else 0.0

    def snapshot(self) -> dict[str, float]:
        """Flat counter dict (:class:`repro.obs.StatsSource`)."""
        with self._lock or NULL_LOCK:
            return {
                "submitted": self.submitted,
                "shed": self.shed,
                "batches_formed": self.batches_formed,
                "batched_requests": self.batched_requests,
                "mean_batch_size": self.mean_batch_size,
                "pending": len(self._queue),
            }

    def reset(self) -> None:
        """Zero the counters; pending requests stay queued."""
        with self._lock or NULL_LOCK:
            self.submitted = 0
            self.shed = 0
            self.batches_formed = 0
            self.batched_requests = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchingQueue(pending={len(self)}, max_batch={self.max_batch}, "
            f"max_wait_s={self.max_wait_s}, shed={self.shed})"
        )
