"""The serving facade: registry + micro-batching + store + early exit.

:class:`ServingEngine` is the online entry point of the library. A request
is a ``(model, node_id)`` pair; the engine answers it from, in order:

1. the :class:`~repro.serving.store.EmbeddingStore` (content-namespaced
   cached prediction — O(1), no model work);
2. a micro-batch through the :class:`~repro.serving.batching.BatchingQueue`
   — rows gathered from the registry's warm hop stack, decided by the
   NAI confidence gate (:func:`repro.models.nai.confidence_gated_predict`)
   or a single full-depth forward.

Admission control is load-shedding: when the queue is full the request is
answered immediately with ``status="shed"`` rather than queued into an
unbounded tail. Every completed request's queue-to-answer latency lands in
a :class:`repro.utils.timer.LatencyHistogram` (p50/p95/p99).

Streaming updates go through :meth:`ServingEngine.apply_update`: the edge
is inserted into the model's :class:`~repro.graph.dynamic.DynamicGraph`,
only the dirty K-hop rows of the hop stack are recomputed
(:mod:`repro.serving.invalidation`), and exactly those nodes are evicted
from the store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.errors import LoadSheddingError, ServingError, TransientError
from repro.graph.core import Graph
from repro.models.nai import confidence_gated_predict
from repro.obs import OBS
from repro.perf.arena import get_default_arena
from repro.resilience.faults import FAULTS
from repro.serving.batching import BatchingQueue, PredictRequest
from repro.serving.invalidation import UpdateReport, dirty_frontiers, patch_stack
from repro.serving.registry import ModelRegistry, ServedModel
from repro.serving.store import EmbeddingStore
from repro.tensor.autograd import Tensor, no_grad
from repro.utils.concurrency import make_lock
from repro.utils.timer import LatencyHistogram
from repro.utils.validation import check_probability

_LOG = obs.get_logger("repro.serving.engine")


@dataclass(frozen=True)
class ServeResult:
    """The answer to one single-node request.

    ``degraded=True`` marks a stale-fallback answer: the model's circuit
    breaker was open and the runtime served a TTL-expired store row
    instead of failing the request.

    ``status="error"`` is produced only by batch front doors that
    guarantee per-request isolation (:meth:`ShardRouter.predict_many`):
    the request failed hard (open breaker with no stale row, timeout,
    executor error) but the failure is pinned to this slot instead of
    aborting the whole batch; ``prediction`` is ``-1`` and meaningless.
    """

    node_id: int
    model_key: str
    prediction: int
    status: str  # "ok" | "shed" | "error"
    cached: bool
    hops_used: int
    latency_s: float
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class ServingEngine:
    """Online inference over registered decoupled models.

    Parameters
    ----------
    registry, queue, store:
        Injectable components; sensible defaults are built when omitted.
        Pass ``store=None`` explicitly to disable prediction caching.
    threshold:
        NAI confidence gate for early exit.
    early_exit:
        When ``False`` every request is answered at full depth K with a
        single head forward (the gate is skipped entirely).
    clock:
        Shared monotonic clock for queue wait + latency accounting.
    threadsafe:
        Construct the default queue/store/latency components thread-safe
        and guard the engine's own counters, so multiple threads (a
        :class:`~repro.serving.runtime.ServingRuntime` batcher + worker
        pool) can drive one engine. Defaults to ``False``: the
        single-threaded path stays lock-free. Injected components are
        the caller's responsibility either way.
    """

    _DEFAULT_STORE = object()  # sentinel: "build a fresh EmbeddingStore"

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        queue: BatchingQueue | None = None,
        store: EmbeddingStore | None = _DEFAULT_STORE,  # type: ignore[assignment]
        threshold: float = 0.9,
        early_exit: bool = True,
        clock: Callable[[], float] = time.monotonic,
        threadsafe: bool = False,
    ) -> None:
        check_probability("threshold", threshold)
        self.threadsafe = bool(threadsafe)
        self.registry = registry if registry is not None else ModelRegistry()
        self.queue = (
            queue if queue is not None
            else BatchingQueue(clock=clock, threadsafe=threadsafe)
        )
        if store is ServingEngine._DEFAULT_STORE:
            store = EmbeddingStore(clock=clock, threadsafe=threadsafe)
        self.store = store
        self.threshold = threshold
        self.early_exit = early_exit
        self._clock = clock
        self.latency = LatencyHistogram(threadsafe=threadsafe)
        self._lock = make_lock(threadsafe)
        # Set by ServingRuntime.attach: once a runtime's batcher thread
        # owns the queue, the inline predict path must not also drain it.
        self._runtime = None
        self.served = 0
        self.shed = 0
        self.cache_hits = 0
        # Weakly attach to the global metrics registry so one
        # obs.get_registry().snapshot() carries serving internals; the
        # most recently constructed engine owns the prefixes.
        obs.register_source("serving.engine", self)
        obs.register_source("serving.queue", self.queue)
        obs.register_source("serving.latency", self.latency)
        if self.store is not None:
            obs.register_source("serving.store", self.store)

    # ------------------------------------------------------------------ #
    # Registration / resolution
    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        model,
        graph: Graph,
        kind: str = "gcn",
        alpha: float | None = None,
        version: int | None = None,
    ) -> str:
        """Register a trained decoupled model; returns its ``name@vN`` key."""
        record = self.registry.register(
            name, model, graph, kind=kind, alpha=alpha, version=version
        )
        _LOG.info(
            "registered %s (n_nodes=%d, k_hops=%d, kind=%s)",
            record.key, graph.n_nodes, record.k_hops, kind,
        )
        return record.key

    def _resolve(self, model: str | None) -> ServedModel:
        if model is not None:
            return self.registry.get(model)
        names = self.registry.names()
        if len(names) != 1:
            raise ServingError(
                "model must be named when the registry holds "
                f"{len(names)} models ({names or 'none'})"
            )
        return self.registry.get(names[0])

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def predict(self, node_id: int, model: str | None = None) -> ServeResult:
        """Answer one single-node request (flushes its micro-batch)."""
        return self.predict_many([node_id], model=model)[0]

    def predict_many(
        self, node_ids: Sequence[int] | np.ndarray, model: str | None = None
    ) -> list[ServeResult]:
        """Stream requests through the batching queue, in arrival order.

        Batches are emitted as soon as the queue policy marks them ready
        (full batch, or the oldest request aging past ``max_wait_s``);
        whatever remains is force-flushed at the end so the call always
        returns a complete answer list aligned with ``node_ids``.
        """
        if not OBS.enabled:
            return self._predict_many(node_ids, model)
        with OBS.tracer.span(
            "serving.predict_many", n_requests=len(node_ids)
        ) as span:
            results = self._predict_many(node_ids, model)
            span.set(
                served=sum(1 for r in results if r.ok),
                shed=sum(1 for r in results if not r.ok),
                store_hits=sum(1 for r in results if r.cached),
            )
            return results

    def _count(self, served: int = 0, shed: int = 0, cache_hits: int = 0) -> None:
        if self._lock is None:
            self.served += served
            self.shed += shed
            self.cache_hits += cache_hits
        else:
            with self._lock:
                self.served += served
                self.shed += shed
                self.cache_hits += cache_hits

    def try_store(
        self, record: ServedModel, node_id: int, t0: float
    ) -> ServeResult | None:
        """Answer ``node_id`` from the embedding store, or ``None`` on miss.

        The store fast path shared by the inline :meth:`predict_many` loop
        and :class:`~repro.serving.runtime.ServingRuntime` submission (a
        hit never enters the batching queue in either mode).
        """
        if self.store is None:
            return None
        cached = self.store.get(record.namespace, node_id)
        if cached is None:
            return None
        # Counters inlined (vs _count): this path runs once per store
        # hit and the helper frame is measurable (E31's 5% bound).
        if self._lock is None:
            self.served += 1
            self.cache_hits += 1
        else:
            with self._lock:
                self.served += 1
                self.cache_hits += 1
        latency = self._clock() - t0
        self.latency.record(latency)
        if OBS.enabled:
            self._obs_store_hit(node_id, cached)
        return ServeResult(
            node_id, record.key, cached.prediction, "ok", True,
            cached.hops_used, latency,
        )

    @staticmethod
    def _obs_store_hit(node_id: int, cached) -> None:
        """Trace + count one store hit (only called when OBS is enabled)."""
        with OBS.tracer.span(
            "serving.request", node_id=node_id, status="ok",
            store_hit=True, hops_used=cached.hops_used,
        ):
            pass
        OBS.registry.counter("serving.requests").inc(
            status="ok", source="store"
        )

    def record_shed(
        self, record: ServedModel, node_id: int, t0: float
    ) -> ServeResult:
        """Account one admission-control rejection and build its result."""
        self._count(shed=1)
        _LOG.debug("request for node %d shed (queue full)", node_id)
        if OBS.enabled:
            with OBS.tracer.span(
                "serving.request", node_id=node_id, status="shed",
                store_hit=False,
            ):
                pass
            OBS.registry.counter("serving.requests").inc(status="shed")
        return ServeResult(
            node_id, record.key, -1, "shed", False, 0, self._clock() - t0
        )

    def _predict_many(
        self, node_ids: Sequence[int] | np.ndarray, model: str | None
    ) -> list[ServeResult]:
        if self._runtime is not None:
            raise ServingError(
                "engine is attached to a ServingRuntime whose batcher "
                "thread owns the queue; submit through the runtime "
                "(predict/predict_async) instead of the inline engine path"
            )
        record = self._resolve(model)
        n = record.graph.n_nodes
        store = self.store
        slots: list[ServeResult | int] = []
        by_id: dict[int, ServeResult] = {}
        for node_id in node_ids:
            node_id = int(node_id)
            if not 0 <= node_id < n:
                raise ServingError(f"node {node_id} outside [0, {n})")
            t0 = self._clock()
            # Store fast path, kept in lockstep with try_store but
            # inlined: the helper frame alone is measurable against
            # E31's 5% single-threaded overhead bound.
            cached = (
                store.get(record.namespace, node_id)
                if store is not None else None
            )
            if cached is not None:
                if self._lock is None:
                    self.served += 1
                    self.cache_hits += 1
                else:
                    with self._lock:
                        self.served += 1
                        self.cache_hits += 1
                latency = self._clock() - t0
                self.latency.record(latency)
                if OBS.enabled:
                    self._obs_store_hit(node_id, cached)
                slots.append(ServeResult(
                    node_id, record.key, cached.prediction, "ok", True,
                    cached.hops_used, latency,
                ))
                continue
            try:
                request = self.queue.submit(node_id, record.key)
            except LoadSheddingError:
                slots.append(self.record_shed(record, node_id, t0))
                continue
            slots.append(request.request_id)
            while self.queue.ready():
                self._process_batch(self.queue.next_batch(), by_id)
        for batch in self.queue.drain():
            self._process_batch(batch, by_id)
        return [
            slot if isinstance(slot, ServeResult) else by_id[slot]
            for slot in slots
        ]

    def run_batch(self, batch: list[PredictRequest]) -> dict[int, ServeResult]:
        """Execute one already-formed micro-batch; results by request id.

        The worker-pool entry point of
        :class:`~repro.serving.runtime.ServingRuntime` — gathers rows,
        runs the gated/full forward, writes the store, and accounts
        latency, exactly like the inline path."""
        # Single local load: clear_injector() may null FAULTS.injector
        # between the active check and the fire, concurrently.
        inj = FAULTS.injector if FAULTS.active else None
        if inj is not None:
            # Fault site "serving.batch": transient/permanent/delay are
            # handled by fire(); drop and corrupt both surface as a
            # retryable loss — the batch executed but its result never
            # arrived intact, which is how the runtime's retry loop and
            # circuit breaker observe infrastructure failures.
            action = inj.fire("serving.batch")
            if action == "drop":
                raise TransientError(
                    "serving batch result dropped by fault injection"
                )
            if action == "corrupt":
                raise TransientError(
                    "serving batch result corrupted in transit "
                    "(fault injection)"
                )
        out: dict[int, ServeResult] = {}
        self._process_batch(batch, out)
        return out

    def _process_batch(
        self, batch: list[PredictRequest], out: dict[int, ServeResult]
    ) -> None:
        if not batch:
            return
        with obs.span(
            "serving.batch", model=batch[0].model_key, batch_size=len(batch)
        ):
            self._run_batch(batch, out)

    def _run_batch(
        self, batch: list[PredictRequest], out: dict[int, ServeResult]
    ) -> None:
        t_start = self._clock()
        record = self.registry.get(batch[0].model_key)
        nodes = np.fromiter((r.node_id for r in batch), dtype=np.int64)
        unique, inverse = np.unique(nodes, return_inverse=True)
        # The per-batch gather buffer is rented from the process arena:
        # steady-state workers recycle the same pages batch after batch
        # instead of allocating a fresh (K+1, m, d) block per micro-batch.
        # Safe to release after inference — the gate/forward take copies
        # of the rows they keep (predictions/hops_used are fresh arrays).
        arena = get_default_arena()
        gather_buf = arena.rent(
            (record.k_hops + 1, len(unique), record.stacked.shape[2]),
            record.dtype,
        )
        try:
            with obs.span("serving.gather", rows=len(unique), hops=record.k_hops):
                # The gather copies the rows into the rented buffer, so only
                # the gather itself needs to be consistent with concurrent
                # stack patches.
                with record.lock.reader:
                    hop_rows = record.hop_rows(unique, out=gather_buf)
            predictions, hops_used = self._infer(record, hop_rows, unique)
        finally:
            arena.release(gather_buf)
        if self.store is not None:
            self.store.put_many(
                record.namespace,
                (
                    (int(node), int(predictions[i]), int(hops_used[i]))
                    for i, node in enumerate(unique)
                ),
            )
        now = self._clock()
        recording = OBS.enabled
        latencies: list[float] = []
        for pos, request in enumerate(batch):
            i = inverse[pos]
            latency = now - request.enqueued_at
            latencies.append(latency)
            out[request.request_id] = ServeResult(
                request.node_id, record.key, int(predictions[i]), "ok",
                False, int(hops_used[i]), latency,
            )
            if recording:
                with OBS.tracer.span(
                    "serving.request", node_id=request.node_id, status="ok",
                    store_hit=False, batch_size=len(batch),
                    queue_wait_s=t_start - request.enqueued_at,
                    hops_used=int(hops_used[i]),
                ):
                    pass
                OBS.registry.counter("serving.requests").inc(
                    status="ok", source="batch"
                )
                OBS.registry.histogram("serving.queue_wait_s").observe(
                    max(t_start - request.enqueued_at, 0.0)
                )
        # One lock round-trip for the whole batch, not one per request.
        self.latency.record_many(latencies)
        self._count(served=len(batch))

    def _infer(
        self, record: ServedModel, hop_rows: list[np.ndarray], unique: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gate or full-depth forward over gathered rows; returns fresh
        ``(predictions, hops_used)`` arrays (no views of ``hop_rows``)."""
        if self.early_exit:
            with obs.span(
                "serving.infer", mode="early_exit", threshold=self.threshold
            ) as span:
                predictions, hops_used = confidence_gated_predict(
                    record.model, hop_rows, self.threshold
                )
                if span:
                    span.set(mean_exit_hop=float(hops_used.mean()))
        else:
            with obs.span("serving.infer", mode="full_depth"):
                record.model.eval()
                with no_grad():
                    logits = record.model(Tensor(hop_rows[-1])).data
                predictions = logits.argmax(axis=1).astype(np.int64)
                hops_used = np.full(len(unique), record.k_hops, dtype=np.int64)
        return predictions, hops_used

    # ------------------------------------------------------------------ #
    # Streaming updates
    # ------------------------------------------------------------------ #

    def apply_update(
        self, u: int, v: int, model: str | None = None
    ) -> UpdateReport:
        """Insert edge ``(u, v)`` and restore the model incrementally.

        Only the K-hop dirty rows of the hop stack are recomputed (exact —
        see :mod:`repro.serving.invalidation`) and only the dirty nodes'
        cached predictions are evicted from the store. The propagation
        *operator* is rebuilt for the new snapshot (one O(edges) pass; the
        dense SpMM work, which dominates, stays local).
        """
        return self.apply_updates([(u, v)], model=model)

    def apply_updates(
        self,
        edges: Iterable[tuple[int, int]],
        model: str | None = None,
    ) -> UpdateReport:
        """Apply a batch of edge insertions with one shared patch pass."""
        record = self._resolve(model)
        edges = [(int(u), int(v)) for u, v in edges]
        if not edges:
            raise ServingError("apply_updates needs at least one edge")
        with obs.span(
            "serving.update", model=record.key, edges=len(edges)
        ) as span:
            # Exclusive over the whole mutate sequence: the dynamic
            # adjacency, the in-place stack patch, and the graph swap
            # must appear atomic to concurrently gathering workers.
            with record.lock.writer:
                dynamic = record.ensure_dynamic()
                for u, v in edges:
                    dynamic.insert_edge(u, v)
                seeds = [node for edge in edges for node in edge]
                dirty = dirty_frontiers(dynamic, seeds, record.k_hops)
                new_graph = dynamic.snapshot()
                # dtype-matched operator: a float32 stack is patched with
                # float32 products (kernel-eligible, no silent upcast).
                operator = self.registry.engine.operator(
                    new_graph, record.kind, record.alpha, dtype=record.dtype
                )
                with obs.span("serving.patch_stack", depths=len(dirty)):
                    rows = patch_stack(record.stack, operator, dirty)
                record.graph = new_graph
                record.rows_recomputed += rows
                record.updates_applied += len(edges)
            invalidated = 0
            if self.store is not None and dirty:
                invalidated = self.store.invalidate(record.namespace, dirty[-1])
            if span:
                span.set(rows_recomputed=rows, store_invalidated=invalidated)
        if OBS.enabled:
            OBS.registry.counter("serving.updates_applied").inc(len(edges))
            OBS.registry.counter("serving.rows_patched").inc(rows)
        _LOG.debug(
            "applied %d edge(s) to %s: %d rows patched, %d store entries "
            "invalidated", len(edges), record.key, rows, invalidated,
        )
        return UpdateReport(
            edges=tuple(edges),
            dirty_per_depth=tuple(dirty),
            rows_recomputed=rows,
            rows_full=record.k_hops * record.graph.n_nodes,
            store_invalidated=invalidated,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        """Engine-level counters (:class:`repro.obs.StatsSource`); the
        queue/store/latency components publish their own snapshots under
        their own registry prefixes."""
        if self._lock is None:
            served, shed, hits = self.served, self.shed, self.cache_hits
        else:
            with self._lock:
                served, shed, hits = self.served, self.shed, self.cache_hits
        return {
            "served": served,
            "shed": shed,
            "cache_hits": hits,
            "models": len(self.registry),
        }

    def reset(self) -> None:
        """Zero the engine counters and its latency histogram."""
        if self._lock is None:
            self.served = self.shed = self.cache_hits = 0
        else:
            with self._lock:
                self.served = self.shed = self.cache_hits = 0
        self.latency.reset()

    def stats(self) -> dict:
        """Engine-wide accounting: latency percentiles, queue, store, models."""
        store_stats = None
        if self.store is not None:
            s = self.store.stats
            store_stats = {
                "hits": s.hits,
                "misses": s.misses,
                "hit_rate": s.hit_rate,
                "size": len(self.store),
                "invalidations": self.store.invalidations,
                "expirations": self.store.expirations,
            }
        return {
            "served": self.served,
            "shed": self.shed,
            "cache_hits": self.cache_hits,
            "latency": self.latency.summary(),
            "queue": {
                "submitted": self.queue.submitted,
                "shed": self.queue.shed,
                "batches": self.queue.batches_formed,
                "mean_batch_size": self.queue.mean_batch_size,
            },
            "store": store_stats,
            "models": {
                record.key: {
                    "n_nodes": record.graph.n_nodes,
                    "k_hops": record.k_hops,
                    "updates_applied": record.updates_applied,
                    "rows_recomputed": record.rows_recomputed,
                }
                for record in self.registry.records()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingEngine(models={len(self.registry)}, served={self.served}, "
            f"shed={self.shed}, p99={self.latency.p99:.2e}s)"
        )
