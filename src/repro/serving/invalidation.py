"""Incremental hop-stack maintenance under streaming edge insertions.

Locality argument (the dynamic-graph analogue of incremental PPR in
:mod:`repro.graph.dynamic`): inserting edge ``(u, v)`` changes row ``i``
of the hop matrix :math:`H_j = P^j X` **iff** ``i`` lies within ``j`` hops
of ``u`` or ``v`` on the *new* graph — the edge itself plus the degree
renormalisation perturb rows/columns ``u, v`` of :math:`P`, and each
further propagation widens the affected set by exactly one hop. So a
K-deep serving stack is restored *exactly* (not approximately) by
recomputing only the dirty rows, depth by depth:

.. math:: H'_j[D_j] = P'[D_j, :]\\, H'_{j-1}, \\qquad D_j = N_j(\\{u, v\\}),

where :math:`H'_{j-1}` is the already-patched previous depth and
:math:`N_j` is the ``j``-hop neighbourhood. Dense recompute cost is
:math:`\\sum_j |D_j|` rows instead of :math:`K \\cdot n` — the push-based
dirty-set discipline the serving engine's recompute counters expose.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.graph.dynamic import DynamicGraph
from repro.perf import kernels
from repro.perf.propagation import DEFAULT_CHUNK_ROWS, rows_spmm
from repro.utils.validation import check_int_range


@dataclass(frozen=True)
class UpdateReport:
    """Accounting for one applied graph update.

    Attributes
    ----------
    edges:
        The inserted edges.
    dirty_per_depth:
        ``dirty_per_depth[j-1]`` holds the node ids whose depth-``j`` rows
        were recomputed (the ``j``-hop neighbourhood of the endpoints).
    rows_recomputed:
        Total dense rows re-derived — ``sum(len(d) for d in dirty_per_depth)``.
    rows_full:
        Rows a from-scratch precompute would touch (``K * n_nodes``).
    store_invalidated:
        Cached predictions dropped from the embedding store.
    """

    edges: tuple[tuple[int, int], ...]
    dirty_per_depth: tuple[np.ndarray, ...] = field(repr=False)
    rows_recomputed: int
    rows_full: int
    store_invalidated: int = 0

    @property
    def dirty_nodes(self) -> np.ndarray:
        """The union dirty set (nodes whose *final* embedding changed)."""
        if not self.dirty_per_depth:
            return np.empty(0, dtype=np.int64)
        return self.dirty_per_depth[-1]

    @property
    def rows_saved_fraction(self) -> float:
        return 1.0 - self.rows_recomputed / max(self.rows_full, 1)


def dirty_frontiers(
    dynamic: DynamicGraph, seeds: Iterable[int], k: int
) -> list[np.ndarray]:
    """``[N_1, ..., N_k]``: nodes within ``j`` hops of ``seeds`` (inclusive).

    One BFS over the (post-insertion) adjacency, recording cumulative
    neighbourhoods per depth. ``N_j`` is exactly the set of rows of
    :math:`P^j X` perturbed by an update at the seed nodes.
    """
    check_int_range("k", k, 0)
    seeds = np.unique(np.asarray(list(seeds), dtype=np.int64))
    n = dynamic.n_nodes
    if len(seeds) and (seeds.min() < 0 or seeds.max() >= n):
        raise ConfigError(f"seeds outside [0, {n})")
    reached = np.zeros(n, dtype=bool)
    reached[seeds] = True
    frontier = deque(int(s) for s in seeds)
    levels: list[np.ndarray] = []
    for _ in range(k):
        fresh: list[int] = []
        for _ in range(len(frontier)):
            u = frontier.popleft()
            for v in dynamic.neighbors(u):
                if not reached[v]:
                    reached[v] = True
                    fresh.append(v)
                    frontier.append(v)
        levels.append(np.flatnonzero(reached).astype(np.int64))
        frontier = deque(fresh)
    return levels


def patch_stack(
    stack: list[np.ndarray],
    operator: sp.spmatrix,
    dirty_per_depth: list[np.ndarray],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> int:
    """Patch a hop stack in place for the given per-depth dirty rows.

    ``stack[0]`` (raw features) is never touched; for each deeper level the
    dirty rows are re-derived from the already-patched previous level via
    :func:`repro.perf.rows_spmm` (which bounds its transient working set
    to ``chunk_rows`` selected rows at a time). Returns the number of
    rows recomputed. The result is exact: untouched rows are
    bit-identical to a full recompute by the locality argument in the
    module docstring.

    Dirty frontiers are cumulative, so once the BFS saturates,
    consecutive depths share an identical row set — the decoded
    :class:`~repro.perf.kernels.RowBand` of that set is reused across
    those depths instead of re-decoding the operator's row spans per
    depth (the right-hand side still changes every depth: it is the
    freshly patched previous level).
    """
    if len(dirty_per_depth) != len(stack) - 1:
        raise ConfigError(
            f"need one dirty set per propagation depth "
            f"({len(stack) - 1}), got {len(dirty_per_depth)}"
        )
    check_int_range("chunk_rows", chunk_rows, 1)
    operator = operator.tocsr()
    rows_recomputed = 0
    band = None
    for depth, rows in enumerate(dirty_per_depth, start=1):
        if len(rows) == 0:
            continue
        rows = np.asarray(rows, dtype=np.int64)
        if band is not None and not band.matches(rows):
            band = None
        if (
            band is None
            and len(rows) <= chunk_rows
            and kernels.kernel_supported(operator, stack[depth - 1])
        ):
            band = kernels.RowBand(operator, rows)
        stack[depth][rows] = rows_spmm(
            operator, rows, stack[depth - 1], chunk_rows=chunk_rows, band=band
        )
        rows_recomputed += len(rows)
    return rows_recomputed
