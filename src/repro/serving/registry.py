"""Model registry: trained decoupled models with warm hop stacks.

A served model is a ``(name, version)`` pair holding the trained head, the
graph snapshot it serves, and — the part that makes single-node latency
flat — the fully precomputed hop stack ``[X, PX, ..., P^K X]`` borrowed
from :class:`repro.perf.PropagationEngine` at registration time. Serving a
node is then a row gather + MLP forward; no sparse work on the request
path. The stack is kept as private *writable* copies so incremental
updates (:mod:`repro.serving.invalidation`) can patch dirty rows in place
without corrupting the engine's shared read-only cache.
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from repro.errors import ConfigError, ServingError
from repro.graph.core import Graph
from repro.graph.dynamic import DynamicGraph
from repro.perf.propagation import PropagationEngine, get_default_engine
from repro.utils.concurrency import RWLock


class ServedModel:
    """One registered ``(name, version)``: model + graph + warm hop stack.

    The hop stack is held as one C-contiguous ``(K+1, n, d)`` array
    (:attr:`stacked`); :attr:`stack` is the per-depth list view of it, so
    in-place row patches through either alias are visible to both. The
    single array makes :meth:`hop_rows` one batched ``np.take`` gather
    across every depth instead of K+1 separate fancy-index copies — the
    multi-RHS amortization of the serving read path.
    """

    def __init__(
        self,
        name: str,
        version: int,
        model,
        graph: Graph,
        stack: list[np.ndarray],
        kind: str,
        alpha: float | None,
    ) -> None:
        self.name = name
        self.version = version
        self.model = model
        self.graph = graph
        # np.stack copies, so the record owns private writable storage
        # regardless of the (typically frozen, engine-shared) input layers.
        self.stacked = np.stack(stack)
        self.stack = list(self.stacked)
        self.kind = kind
        self.alpha = alpha
        # Content-keyed cache namespace: a model re-registered over a
        # rebuilt-but-identical graph maps to the same namespace, so warm
        # EmbeddingStore rows survive the rebuild (and can never be served
        # across a *structurally* different registration).
        self.namespace = f"{name}@v{version}:{graph.fingerprint}"
        self.dynamic: DynamicGraph | None = None
        self.rows_recomputed = 0
        self.updates_applied = 0
        # Readers–writer lock over the mutable hop stack: micro-batch
        # workers gather rows concurrently (with lock.reader) while
        # incremental updates patch rows exclusively (with lock.writer).
        self.lock = RWLock()

    @property
    def key(self) -> str:
        return f"{self.name}@v{self.version}"

    @property
    def k_hops(self) -> int:
        return len(self.stack) - 1

    @property
    def dtype(self) -> np.dtype:
        """Element type of the served hop stack (float32 or float64)."""
        return self.stacked.dtype

    def hop_rows(
        self, nodes: np.ndarray, out: np.ndarray | None = None
    ) -> list[np.ndarray]:
        """Depth-0..K embedding rows for ``nodes`` (gather, no propagation).

        One batched gather over the stacked ``(K+1, n, d)`` array; ``out``
        (shape ``(K+1, len(nodes), d)``, e.g. rented from a
        :class:`~repro.perf.arena.BufferArena`) receives the rows when
        given, and the returned per-depth arrays are views of it.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        return list(np.take(self.stacked, nodes, axis=1, out=out))

    def ensure_dynamic(self) -> DynamicGraph:
        """The mutable adjacency behind this model, created on first update."""
        if self.dynamic is None:
            self.dynamic = DynamicGraph.from_graph(self.graph)
        return self.dynamic

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServedModel({self.key}, n={self.graph.n_nodes}, "
            f"k={self.k_hops}, updates={self.updates_applied})"
        )


class ModelRegistry:
    """Named, versioned store of servable models with warm precompute.

    Registration is the only place propagation happens: the hop stack is
    computed once through the shared :class:`PropagationEngine` (reusing
    any operator/stack the offline pipeline already built for the same
    graph content) and pinned on the record.

    All registry operations are guarded by one reentrant lock: model
    registration/lookup is rare control-plane traffic, so a single lock
    (rather than a per-record one) keeps version auto-increment and the
    name→versions map consistent under concurrent registrations.
    """

    def __init__(self, engine: PropagationEngine | None = None) -> None:
        self._engine = engine
        self._lock = threading.RLock()
        self._models: dict[str, dict[int, ServedModel]] = {}

    @property
    def engine(self) -> PropagationEngine:
        return self._engine if self._engine is not None else get_default_engine()

    # ------------------------------------------------------------------ #

    def register(
        self,
        name: str,
        model,
        graph: Graph,
        kind: str = "gcn",
        alpha: float | None = None,
        version: int | None = None,
    ) -> ServedModel:
        """Register ``model`` over ``graph`` and warm its hop stack.

        ``model`` must expose ``k_hops`` and be callable on feature rows
        (the decoupled-model contract, e.g. :class:`repro.models.SGC`).
        Omitting ``version`` auto-increments per name.
        """
        if graph.x is None:
            raise ConfigError("served graphs need node features (graph.x)")
        k_hops = getattr(model, "k_hops", None)
        if not isinstance(k_hops, int) or k_hops < 0:
            raise ConfigError(
                "model must expose an integer k_hops >= 0 (decoupled contract)"
            )
        with self._lock:
            versions = self._models.setdefault(name, {})
            if version is None:
                version = max(versions) + 1 if versions else 1
            elif version in versions:
                raise ServingError(
                    f"model {name!r} version {version} already registered"
                )
            warm = self.engine.propagate(
                graph, graph.x, k_hops, kind=kind, alpha=alpha
            )
            # ServedModel stacks the layers into private writable storage,
            # so incremental updates can patch rows in place without
            # touching the engine's shared read-only cache.
            record = ServedModel(name, int(version), model, graph, warm, kind, alpha)
            versions[record.version] = record
            return record

    def get(self, name: str, version: int | None = None) -> ServedModel:
        """Resolve ``name`` / ``"name@vN"`` to a record (latest when unversioned)."""
        if version is None and "@v" in name:
            name, _, suffix = name.rpartition("@v")
            try:
                version = int(suffix)
            except ValueError:
                raise ServingError(f"malformed model key {name + '@v' + suffix!r}")
        with self._lock:
            versions = self._models.get(name)
            if not versions:
                raise ServingError(
                    f"unknown model {name!r}; "
                    f"registered: {sorted(self._models) or 'none'}"
                )
            if version is None:
                version = max(versions)
            if version not in versions:
                raise ServingError(
                    f"model {name!r} has no version {version}; "
                    f"available: {sorted(versions)}"
                )
            return versions[version]

    def unregister(self, name: str, version: int | None = None) -> None:
        """Drop one version (or every version) of ``name``."""
        with self._lock:
            if name not in self._models:
                raise ServingError(f"unknown model {name!r}")
            if version is None:
                del self._models[name]
                return
            versions = self._models[name]
            if version not in versions:
                raise ServingError(f"model {name!r} has no version {version}")
            del versions[version]
            if not versions:
                del self._models[name]

    # ------------------------------------------------------------------ #

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def versions(self, name: str) -> list[int]:
        with self._lock:
            if name not in self._models:
                raise ServingError(f"unknown model {name!r}")
            return sorted(self._models[name])

    def records(self) -> Iterable[ServedModel]:
        with self._lock:
            snapshot = [
                record
                for versions in self._models.values()
                for record in versions.values()
            ]
        yield from snapshot

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._models.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelRegistry({', '.join(r.key for r in self.records()) or 'empty'})"
