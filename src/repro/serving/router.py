"""Partition-aware request routing over per-shard serving runtimes.

:class:`ShardRouter` is the serving face of :mod:`repro.distributed`:
one :class:`~repro.serving.runtime.ServingRuntime` per graph shard, a
global-id front door, and halo maintenance between them.

* **Routing** — every request for a global node id lands on the runtime
  of the shard that *owns* the node (its partition part); the id is
  translated to the shard-local id on the way in and back to the global
  id on the answer. There is no broadcast and no scatter-gather: one
  request touches exactly one shard's engine.
* **Halo gathers** — a request for a *boundary* node (one incident to a
  cross-partition arc) first refreshes the owning shard's ghost rows:
  the full hop-stack rows of each ghost are copied from the shard that
  owns that ghost (under the owner's reader lock and the target's
  writer lock). Interior requests skip this entirely — the counters the
  routing tests pin down.
* **Failure isolation** — each shard's runtime owns its own circuit
  breakers, retry budget, and store. A failing shard engine trips only
  that shard's breaker; every other shard keeps serving unaffected.
* **Replicated failover** — with ``replication_factor >= 2`` every
  shard gets one *primary* runtime plus warm replicas over the same
  local graph (each with a private hop stack and store). Routing always
  targets the shard's *active* replica; when its breaker opens, the
  router fails over to the first healthy replica, and a demoted primary
  is readmitted only after its breaker cools down, its stale store is
  flushed, its ghost rows are re-gathered, and a real probe request
  succeeds (the failover state machine in ``DESIGN.md``).

The local hop stacks are *exact* for owned nodes at registration: a
shard's local graph keeps the full neighbourhood of every owned node
(ghosts supply the cross-partition endpoints), so with row-normalised
propagation (``kind="rw"``) a one-hop decoupled model served through the
router answers identically to the same model served over the whole
graph — the equivalence ``tests/test_shard_router.py`` asserts.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro import obs
from repro.errors import ConfigError, LoadSheddingError, ServingError
from repro.graph.core import Graph
from repro.serving.engine import ServeResult
from repro.serving.runtime import ServingRuntime

_LOG = obs.get_logger("repro.serving.router")


class ShardRouter:
    """Serve one model over a partitioned graph, one runtime per shard.

    Parameters
    ----------
    model:
        A decoupled model (``k_hops`` contract) registered on every
        shard.
    graph:
        The full graph (features required).
    assignment:
        Partition assignment, one part id per node (e.g. from
        :func:`repro.editing.ldg_partition`).
    n_parts:
        Number of shards.
    name, kind, alpha:
        Registration parameters passed to every shard's runtime
        (``kind="rw"`` keeps owned-node hop-1 rows exact, see module
        doc).
    runtime_kwargs:
        Keyword arguments for each per-shard
        :class:`~repro.serving.runtime.ServingRuntime` (breaker tuning,
        retry budget, ``early_exit``...).
    replication_factor:
        Runtimes per shard (default 1 = no replication). Replica 0 is
        the shard's primary; replicas warm-register the same model over
        the same local graph with independent hop stacks, stores, and
        breakers, and take over when the active replica's breaker opens.
    """

    def __init__(
        self,
        model,
        graph: Graph,
        assignment: np.ndarray,
        n_parts: int,
        name: str = "sharded",
        kind: str = "rw",
        alpha: float | None = None,
        runtime_kwargs: dict | None = None,
        replication_factor: int = 1,
    ) -> None:
        from repro.distributed.shards import build_shard_plan
        from repro.utils.validation import check_int_range

        if graph.x is None:
            raise ConfigError("ShardRouter needs node features (graph.x)")
        check_int_range("replication_factor", replication_factor, 1)
        self.plan = build_shard_plan(graph, assignment, n_parts)
        self.n_parts = int(n_parts)
        self.replication_factor = int(replication_factor)
        self.owner = self.plan.assignment
        self._g2l = []
        #: per shard: all replica runtimes / records, replica 0 = primary
        self._replicas: list[list[ServingRuntime]] = []
        self._replica_records: list[list] = []
        #: per shard: index of the replica currently serving requests
        self._active: list[int] = [0] * self.n_parts
        #: global-id mask of nodes incident to any cross-partition arc
        self._boundary = np.zeros(graph.n_nodes, dtype=bool)
        kwargs = dict(runtime_kwargs or {})
        # Each shard runtime registers as its own stats source
        # (serving.shard0, serving.shard1, ...; replicas append ".r<k>")
        # so one coordinator snapshot() carries every shard's queue depth
        # and breaker state side by side instead of the last runtime
        # clobbering one slot.
        prefix_base = kwargs.pop("source_prefix", "serving.shard")
        for p, shard in enumerate(self.plan.shards):
            g2l = np.full(graph.n_nodes, -1, dtype=np.int64)
            g2l[shard.local_nodes] = np.arange(shard.n_local)
            self._g2l.append(g2l)
            self._boundary[shard.boundary] = True
            local = shard.local_graph(x=graph.x[shard.local_nodes])
            runtimes: list[ServingRuntime] = []
            records: list = []
            for r in range(self.replication_factor):
                suffix = f"{p}" if r == 0 else f"{p}.r{r}"
                runtime = ServingRuntime(
                    source_prefix=f"{prefix_base}{suffix}", **kwargs
                )
                key = runtime.register(
                    name, model, local, kind=kind, alpha=alpha
                )
                runtimes.append(runtime)
                records.append(runtime.engine.registry.get(key))
            self._replicas.append(runtimes)
            self._replica_records.append(records)
        # Per-shard halo pull plan: owner part -> (ghost slots here,
        # owned local ids there), grouped once so a gather is one locked
        # block copy per owning shard.
        self._halo_sources: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
        for p, shard in enumerate(self.plan.shards):
            sources: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            if len(shard.ghosts):
                owners = self.owner[shard.ghosts]
                slots = shard.n_owned + np.arange(len(shard.ghosts))
                for q in np.unique(owners):
                    mask = owners == q
                    sources[int(q)] = (
                        slots[mask],
                        self._g2l[q][shard.ghosts[mask]],
                    )
            self._halo_sources.append(sources)
        self.requests = 0
        self.boundary_requests = 0
        self.interior_requests = 0
        self.halo_gathers = 0
        self.halo_rows_copied = 0
        self.halo_gathers_by_part = dict.fromkeys(range(self.n_parts), 0)
        self.requests_by_part = dict.fromkeys(range(self.n_parts), 0)
        self.failovers = 0
        self.readmissions = 0
        self.request_errors = 0
        self._closed = False
        obs.register_source("serving.router", self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def _runtimes(self) -> list[ServingRuntime]:
        """The *active* replica runtime of every shard (back-compat view:
        with ``replication_factor=1`` this is exactly the old per-shard
        runtime list)."""
        return [
            replicas[self._active[p]]
            for p, replicas in enumerate(self._replicas)
        ]

    @property
    def _records(self) -> list:
        """The active replica's registry record of every shard."""
        return [
            records[self._active[p]]
            for p, records in enumerate(self._replica_records)
        ]

    def shard_of(self, node_id: int) -> int:
        """The part (= runtime index) that owns ``node_id``."""
        n = len(self.owner)
        if not 0 <= node_id < n:
            raise ServingError(f"node {node_id} outside [0, {n})")
        return int(self.owner[node_id])

    def is_boundary(self, node_id: int) -> bool:
        """Whether ``node_id`` is incident to a cross-partition arc."""
        return bool(self._boundary[node_id])

    def runtime(self, part: int) -> ServingRuntime:
        """The serving runtime of one shard."""
        return self._runtimes[part]

    def breaker(self, part: int):
        """The circuit breaker guarding one shard's model (lazy)."""
        return self._runtimes[part].breaker(self._records[part].key)

    # ------------------------------------------------------------------ #
    # Halo maintenance
    # ------------------------------------------------------------------ #

    def _gather_halo(self, part: int, replica: int | None = None) -> None:
        """Refresh ``part``'s ghost hop-stack rows from their owners.

        For each owning shard: copy the owners' full-depth rows under
        their reader lock, then patch this shard's ghost slots under its
        writer lock — ghost data served from this shard is at most one
        gather old, and concurrent micro-batch reads never observe a
        torn row. Owner rows always come from each owning shard's
        *active* replica; ``replica`` selects which of ``part``'s
        replicas to patch (default: its active one).
        """
        idx = self._active[part] if replica is None else replica
        record = self._replica_records[part][idx]
        for q, (slots, owner_rows) in self._halo_sources[part].items():
            owner_record = self._replica_records[q][self._active[q]]
            with owner_record.lock.reader:
                rows = owner_record.stacked[:, owner_rows].copy()
            with record.lock.writer:
                record.stacked[:, slots] = rows
            self.halo_rows_copied += len(slots)
        self.halo_gathers += 1
        self.halo_gathers_by_part[part] += 1

    # ------------------------------------------------------------------ #
    # Replica health / failover
    # ------------------------------------------------------------------ #

    def active_replica(self, part: int) -> int:
        """Index of the replica currently serving ``part`` (0 = primary)."""
        return self._active[part]

    def _replica_state(self, part: int, replica: int) -> str:
        """The breaker state of one replica (``"closed"`` if breakers are
        disabled). Reads ``.state`` only — ``allow()`` would consume the
        half-open probe budget a health check has no claim on."""
        runtime = self._replicas[part][replica]
        breaker = runtime.breaker(self._replica_records[part][replica].key)
        return "closed" if breaker is None else breaker.state

    def _healthy(self, part: int, replica: int) -> bool:
        return self._replica_state(part, replica) != "open"

    def _catch_up(self, part: int, replica: int) -> None:
        """Bring one replica back in sync before it serves traffic:
        flush its (possibly stale) store namespace and re-gather its
        ghost rows from the shards that own them."""
        runtime = self._replicas[part][replica]
        record = self._replica_records[part][replica]
        if runtime.engine.store is not None:
            runtime.engine.store.invalidate(record.namespace)
        if self._halo_sources[part]:
            self._gather_halo(part, replica=replica)

    def _transition(self, part: int, to: int, kind: str) -> None:
        """Switch ``part``'s active replica, with obs breadcrumbs. All
        membership transitions land in the ``supervisor.*`` namespace so
        one metric family covers training-rank and serving-replica
        churn alike."""
        frm = self._active[part]
        self._active[part] = to
        _LOG.warning(
            "shard %d %s: replica %d -> %d", part, kind, frm, to,
        )
        if obs.OBS.enabled:
            obs.OBS.registry.counter(f"supervisor.{kind}s").inc(
                shard=str(part)
            )
            obs.OBS.registry.gauge("supervisor.active_replica").set(
                float(to), shard=str(part)
            )

    def _failover(self, part: int, to: int) -> None:
        with obs.span("router.failover", shard=part, to=to):
            self._catch_up(part, to)
            self._transition(part, to, "failover")
            self.failovers += 1

    def _maybe_readmit(self, part: int) -> None:
        """Fail back to the primary once it looks healthy again.

        Readmission is gated on (1) the primary's breaker having left
        the open state (its own cooldown clock) and (2) one real probe
        request answering ``status="ok"`` — catch-up runs *before* the
        probe so the probe cannot be answered from a stale store row
        (a store hit never reaches the breaker, so it would be a
        false-positive health signal) and so the first readmitted
        request already serves fresh ghost data.
        """
        if self._active[part] == 0:
            return
        if self._replica_state(part, 0) == "open":
            return  # still cooling down
        runtime = self._replicas[part][0]
        record = self._replica_records[part][0]
        with obs.span("router.readmission_probe", shard=part):
            self._catch_up(part, 0)
            if record.graph.n_nodes > 0:
                try:
                    probe = runtime.predict(0, model=record.key)
                except Exception:  # noqa: BLE001 - probe outcome is the point
                    # The failed probe already fed the breaker; stay
                    # failed over until the next cooldown.
                    return
                if probe.status != "ok" or probe.degraded:
                    return
        self._transition(part, 0, "readmission")
        self.readmissions += 1

    def _route(self, part: int) -> int:
        """The replica index that should serve ``part``'s next request,
        applying failover / readmission transitions as a side effect."""
        if self._active[part] != 0:
            self._maybe_readmit(part)
        active = self._active[part]
        if self._healthy(part, active):
            return active
        for r in range(self.replication_factor):
            if r != active and self._healthy(part, r):
                self._failover(part, r)
                return r
        # No healthy replica: stay put and let the active breaker's own
        # semantics (stale fallback / CircuitOpenError) answer.
        return active

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def predict(
        self, node_id: int, timeout_s: float | None = None
    ) -> ServeResult:
        """Answer one global-node request on its owning shard.

        Boundary nodes trigger a halo gather first; interior nodes go
        straight to the shard engine. The returned
        :class:`~repro.serving.engine.ServeResult` carries the *global*
        node id.
        """
        if self._closed:
            raise ServingError("router is closed; no new requests accepted")
        node_id = int(node_id)
        part = self.shard_of(node_id)
        local = int(self._g2l[part][node_id])
        replica = self._route(part)
        self.requests += 1
        self.requests_by_part[part] += 1
        boundary = bool(self._boundary[node_id])
        with obs.span("router.predict", shard=part, boundary=boundary):
            if boundary:
                self.boundary_requests += 1
                self._gather_halo(part)
            else:
                self.interior_requests += 1
            result = self._replicas[part][replica].predict(
                local,
                model=self._replica_records[part][replica].key,
                timeout_s=timeout_s,
            )
        if obs.OBS.enabled:
            obs.OBS.registry.counter("router.requests").inc(shard=str(part))
        return dataclasses.replace(result, node_id=node_id)

    def predict_many(
        self,
        node_ids,
        timeout_s: float | None = None,
    ) -> list[ServeResult]:
        """Per-request routing over a stream of global node ids.

        One shard failing hard never fails the batch: a request whose
        shard raises (open breaker without a stale row, timeout, batch
        executor error) comes back as a ``status="error"`` result in its
        slot — requests on every other shard are answered normally and
        the returned list always aligns with ``node_ids``. Shed
        admissions likewise come back as ``status="shed"`` results,
        matching :meth:`ServingRuntime.predict_many`. Caller bugs (a
        node id outside the graph, a closed router) still raise.
        """
        results: list[ServeResult] = []
        for node_id in node_ids:
            node_id = int(node_id)
            if self._closed:
                raise ServingError(
                    "router is closed; no new requests accepted"
                )
            part = self.shard_of(node_id)  # out-of-range raises here
            t0 = time.monotonic()
            try:
                results.append(self.predict(node_id, timeout_s=timeout_s))
                continue
            except LoadSheddingError:
                status = "shed"
            except Exception as exc:  # noqa: BLE001 - isolated per request
                status = "error"
                _LOG.warning(
                    "request for node %d failed on shard %d (%s): %s",
                    node_id, part, type(exc).__name__, exc,
                )
            self.request_errors += status == "error"
            if obs.OBS.enabled:
                obs.OBS.registry.counter("router.request_errors").inc(
                    shard=str(part), status=status
                )
            key = self._replica_records[part][self._active[part]].key
            results.append(
                ServeResult(
                    node_id, key, -1, status, False, 0,
                    time.monotonic() - t0,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle / stats
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drain and close every shard runtime (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for replicas in self._replicas:
            for runtime in replicas:
                runtime.close()
        _LOG.info(
            "router closed: %d requests (%d boundary, %d halo gathers)",
            self.requests, self.boundary_requests, self.halo_gathers,
        )

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def snapshot(self) -> dict[str, float]:
        """Flat counter dict (:class:`repro.obs.StatsSource`); per-shard
        request/halo-gather series are labelled ``{shard=p}``."""
        out = {
            "shards": self.n_parts,
            "replication_factor": self.replication_factor,
            "requests": self.requests,
            "boundary_requests": self.boundary_requests,
            "interior_requests": self.interior_requests,
            "halo_gathers": self.halo_gathers,
            "halo_rows_copied": self.halo_rows_copied,
            "failovers": self.failovers,
            "readmissions": self.readmissions,
            "request_errors": self.request_errors,
            "breakers_open": sum(
                1
                for replicas in self._replicas
                for rt in replicas
                for b in rt._breakers.values()
                if b.state != "closed"
            ),
            "closed": float(self._closed),
        }
        for part in range(self.n_parts):
            out[f"requests{{shard={part}}}"] = float(
                self.requests_by_part[part]
            )
            out[f"halo_gathers{{shard={part}}}"] = float(
                self.halo_gathers_by_part[part]
            )
            out[f"active_replica{{shard={part}}}"] = float(
                self._active[part]
            )
        return out

    def reset(self) -> None:
        """Zero the routing counters (shard runtimes are untouched)."""
        self.requests = 0
        self.boundary_requests = 0
        self.interior_requests = 0
        self.halo_gathers = 0
        self.halo_rows_copied = 0
        self.halo_gathers_by_part = dict.fromkeys(range(self.n_parts), 0)
        self.requests_by_part = dict.fromkeys(range(self.n_parts), 0)
        self.failovers = 0
        self.readmissions = 0
        self.request_errors = 0

    def stats(self) -> dict:
        """Router counters plus every shard runtime's report."""
        return {
            "router": self.snapshot(),
            "shards": [rt.stats() for rt in self._runtimes],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRouter(shards={self.n_parts}, requests={self.requests}, "
            f"halo_gathers={self.halo_gathers}, closed={self._closed})"
        )
