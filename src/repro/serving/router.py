"""Partition-aware request routing over per-shard serving runtimes.

:class:`ShardRouter` is the serving face of :mod:`repro.distributed`:
one :class:`~repro.serving.runtime.ServingRuntime` per graph shard, a
global-id front door, and halo maintenance between them.

* **Routing** — every request for a global node id lands on the runtime
  of the shard that *owns* the node (its partition part); the id is
  translated to the shard-local id on the way in and back to the global
  id on the answer. There is no broadcast and no scatter-gather: one
  request touches exactly one shard's engine.
* **Halo gathers** — a request for a *boundary* node (one incident to a
  cross-partition arc) first refreshes the owning shard's ghost rows:
  the full hop-stack rows of each ghost are copied from the shard that
  owns that ghost (under the owner's reader lock and the target's
  writer lock). Interior requests skip this entirely — the counters the
  routing tests pin down.
* **Failure isolation** — each shard's runtime owns its own circuit
  breakers, retry budget, and store. A failing shard engine trips only
  that shard's breaker; every other shard keeps serving unaffected.

The local hop stacks are *exact* for owned nodes at registration: a
shard's local graph keeps the full neighbourhood of every owned node
(ghosts supply the cross-partition endpoints), so with row-normalised
propagation (``kind="rw"``) a one-hop decoupled model served through the
router answers identically to the same model served over the whole
graph — the equivalence ``tests/test_shard_router.py`` asserts.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.errors import ConfigError, ServingError
from repro.graph.core import Graph
from repro.serving.engine import ServeResult
from repro.serving.runtime import ServingRuntime

_LOG = obs.get_logger("repro.serving.router")


class ShardRouter:
    """Serve one model over a partitioned graph, one runtime per shard.

    Parameters
    ----------
    model:
        A decoupled model (``k_hops`` contract) registered on every
        shard.
    graph:
        The full graph (features required).
    assignment:
        Partition assignment, one part id per node (e.g. from
        :func:`repro.editing.ldg_partition`).
    n_parts:
        Number of shards.
    name, kind, alpha:
        Registration parameters passed to every shard's runtime
        (``kind="rw"`` keeps owned-node hop-1 rows exact, see module
        doc).
    runtime_kwargs:
        Keyword arguments for each per-shard
        :class:`~repro.serving.runtime.ServingRuntime` (breaker tuning,
        retry budget, ``early_exit``...).
    """

    def __init__(
        self,
        model,
        graph: Graph,
        assignment: np.ndarray,
        n_parts: int,
        name: str = "sharded",
        kind: str = "rw",
        alpha: float | None = None,
        runtime_kwargs: dict | None = None,
    ) -> None:
        from repro.distributed.shards import build_shard_plan

        if graph.x is None:
            raise ConfigError("ShardRouter needs node features (graph.x)")
        self.plan = build_shard_plan(graph, assignment, n_parts)
        self.n_parts = int(n_parts)
        self.owner = self.plan.assignment
        self._g2l = []
        self._runtimes: list[ServingRuntime] = []
        self._records = []
        #: global-id mask of nodes incident to any cross-partition arc
        self._boundary = np.zeros(graph.n_nodes, dtype=bool)
        kwargs = dict(runtime_kwargs or {})
        # Each shard runtime registers as its own stats source
        # (serving.shard0, serving.shard1, ...) so one coordinator
        # snapshot() carries every shard's queue depth and breaker state
        # side by side instead of the last runtime clobbering one slot.
        prefix_base = kwargs.pop("source_prefix", "serving.shard")
        for p, shard in enumerate(self.plan.shards):
            g2l = np.full(graph.n_nodes, -1, dtype=np.int64)
            g2l[shard.local_nodes] = np.arange(shard.n_local)
            self._g2l.append(g2l)
            self._boundary[shard.boundary] = True
            local = shard.local_graph(x=graph.x[shard.local_nodes])
            runtime = ServingRuntime(
                source_prefix=f"{prefix_base}{p}", **kwargs
            )
            key = runtime.register(name, model, local, kind=kind, alpha=alpha)
            self._runtimes.append(runtime)
            self._records.append(runtime.engine.registry.get(key))
        # Per-shard halo pull plan: owner part -> (ghost slots here,
        # owned local ids there), grouped once so a gather is one locked
        # block copy per owning shard.
        self._halo_sources: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
        for p, shard in enumerate(self.plan.shards):
            sources: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            if len(shard.ghosts):
                owners = self.owner[shard.ghosts]
                slots = shard.n_owned + np.arange(len(shard.ghosts))
                for q in np.unique(owners):
                    mask = owners == q
                    sources[int(q)] = (
                        slots[mask],
                        self._g2l[q][shard.ghosts[mask]],
                    )
            self._halo_sources.append(sources)
        self.requests = 0
        self.boundary_requests = 0
        self.interior_requests = 0
        self.halo_gathers = 0
        self.halo_rows_copied = 0
        self.halo_gathers_by_part = dict.fromkeys(range(self.n_parts), 0)
        self.requests_by_part = dict.fromkeys(range(self.n_parts), 0)
        self._closed = False
        obs.register_source("serving.router", self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def shard_of(self, node_id: int) -> int:
        """The part (= runtime index) that owns ``node_id``."""
        n = len(self.owner)
        if not 0 <= node_id < n:
            raise ServingError(f"node {node_id} outside [0, {n})")
        return int(self.owner[node_id])

    def is_boundary(self, node_id: int) -> bool:
        """Whether ``node_id`` is incident to a cross-partition arc."""
        return bool(self._boundary[node_id])

    def runtime(self, part: int) -> ServingRuntime:
        """The serving runtime of one shard."""
        return self._runtimes[part]

    def breaker(self, part: int):
        """The circuit breaker guarding one shard's model (lazy)."""
        return self._runtimes[part].breaker(self._records[part].key)

    # ------------------------------------------------------------------ #
    # Halo maintenance
    # ------------------------------------------------------------------ #

    def _gather_halo(self, part: int) -> None:
        """Refresh ``part``'s ghost hop-stack rows from their owners.

        For each owning shard: copy the owners' full-depth rows under
        their reader lock, then patch this shard's ghost slots under its
        writer lock — ghost data served from this shard is at most one
        gather old, and concurrent micro-batch reads never observe a
        torn row.
        """
        record = self._records[part]
        for q, (slots, owner_rows) in self._halo_sources[part].items():
            owner_record = self._records[q]
            with owner_record.lock.reader:
                rows = owner_record.stacked[:, owner_rows].copy()
            with record.lock.writer:
                record.stacked[:, slots] = rows
            self.halo_rows_copied += len(slots)
        self.halo_gathers += 1
        self.halo_gathers_by_part[part] += 1

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def predict(
        self, node_id: int, timeout_s: float | None = None
    ) -> ServeResult:
        """Answer one global-node request on its owning shard.

        Boundary nodes trigger a halo gather first; interior nodes go
        straight to the shard engine. The returned
        :class:`~repro.serving.engine.ServeResult` carries the *global*
        node id.
        """
        if self._closed:
            raise ServingError("router is closed; no new requests accepted")
        node_id = int(node_id)
        part = self.shard_of(node_id)
        local = int(self._g2l[part][node_id])
        self.requests += 1
        self.requests_by_part[part] += 1
        boundary = bool(self._boundary[node_id])
        with obs.span("router.predict", shard=part, boundary=boundary):
            if boundary:
                self.boundary_requests += 1
                self._gather_halo(part)
            else:
                self.interior_requests += 1
            result = self._runtimes[part].predict(
                local, model=self._records[part].key, timeout_s=timeout_s
            )
        if obs.OBS.enabled:
            obs.OBS.registry.counter("router.requests").inc(shard=str(part))
        return dataclasses.replace(result, node_id=node_id)

    def predict_many(
        self,
        node_ids,
        timeout_s: float | None = None,
    ) -> list[ServeResult]:
        """Per-request routing over a stream of global node ids."""
        return [self.predict(int(n), timeout_s=timeout_s) for n in node_ids]

    # ------------------------------------------------------------------ #
    # Lifecycle / stats
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drain and close every shard runtime (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for runtime in self._runtimes:
            runtime.close()
        _LOG.info(
            "router closed: %d requests (%d boundary, %d halo gathers)",
            self.requests, self.boundary_requests, self.halo_gathers,
        )

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def snapshot(self) -> dict[str, float]:
        """Flat counter dict (:class:`repro.obs.StatsSource`); per-shard
        request/halo-gather series are labelled ``{shard=p}``."""
        out = {
            "shards": self.n_parts,
            "requests": self.requests,
            "boundary_requests": self.boundary_requests,
            "interior_requests": self.interior_requests,
            "halo_gathers": self.halo_gathers,
            "halo_rows_copied": self.halo_rows_copied,
            "breakers_open": sum(
                1
                for rt in self._runtimes
                for b in rt._breakers.values()
                if b.state != "closed"
            ),
            "closed": float(self._closed),
        }
        for part in range(self.n_parts):
            out[f"requests{{shard={part}}}"] = float(
                self.requests_by_part[part]
            )
            out[f"halo_gathers{{shard={part}}}"] = float(
                self.halo_gathers_by_part[part]
            )
        return out

    def reset(self) -> None:
        """Zero the routing counters (shard runtimes are untouched)."""
        self.requests = 0
        self.boundary_requests = 0
        self.interior_requests = 0
        self.halo_gathers = 0
        self.halo_rows_copied = 0
        self.halo_gathers_by_part = dict.fromkeys(range(self.n_parts), 0)
        self.requests_by_part = dict.fromkeys(range(self.n_parts), 0)

    def stats(self) -> dict:
        """Router counters plus every shard runtime's report."""
        return {
            "router": self.snapshot(),
            "shards": [rt.stats() for rt in self._runtimes],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardRouter(shards={self.n_parts}, requests={self.requests}, "
            f"halo_gathers={self.halo_gathers}, closed={self._closed})"
        )
