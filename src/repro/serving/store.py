"""Embedding/prediction store for the online path.

A thin serving-semantics layer over :class:`repro.storage.FeatureStore`:
entries are cached predictions keyed by a model's content namespace
(name, version *and* graph fingerprint — see
:class:`repro.serving.registry.ServedModel`) plus node id, bounded by LRU
capacity and an optional TTL, and invalidated *push-style*: when a graph
update dirties a K-hop neighbourhood, exactly those node ids are evicted
while every other cached prediction stays warm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.storage.feature_cache import CacheStats, FeatureStore
from repro.utils.validation import check_int_range


@dataclass(frozen=True)
class CachedPrediction:
    """A served prediction kept for reuse: class id + exit depth."""

    prediction: int
    hops_used: int


class EmbeddingStore:
    """TTL + LRU + dirty-set invalidated cache of per-node predictions."""

    def __init__(
        self,
        capacity: int = 65536,
        ttl_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        threadsafe: bool = False,
    ) -> None:
        check_int_range("capacity", capacity, 1)
        self._rows = FeatureStore(
            capacity, ttl_s=ttl_s, clock=clock, threadsafe=threadsafe
        )
        # Instance-bound delegation: `get` is probed once per serving
        # request, and the pure-passthrough frame is measurable on the
        # store-hit fast path (E31's 5% bound).
        self.get = self._rows.get

    # ------------------------------------------------------------------ #

    def get(self, namespace: str, node: int) -> CachedPrediction | None:
        """The cached prediction, or ``None`` on miss/expiry.

        Shadowed per-instance by the bound ``FeatureStore.get`` in
        ``__init__``; this def documents the contract.
        """
        return self._rows.get(namespace, node)

    def get_stale(self, namespace: str, node: int) -> CachedPrediction | None:
        """The resident prediction even when TTL-expired, else ``None``.

        The degraded-read used when a model's circuit breaker is open:
        an old answer beats no answer. Counted separately
        (:attr:`stale_hits`) so hit-rate accounting stays honest.
        """
        return self._rows.get_stale(namespace, node)

    def put(
        self, namespace: str, node: int, prediction: int, hops_used: int
    ) -> CachedPrediction:
        entry = CachedPrediction(int(prediction), int(hops_used))
        self._rows.put(namespace, node, entry)
        return entry

    def put_many(
        self, namespace: str, entries: Iterable[tuple[int, int, int]]
    ) -> None:
        """Batch-insert ``(node, prediction, hops_used)`` rows under one
        lock acquisition — the per-micro-batch write shape."""
        self._rows.put_many(
            namespace,
            (
                (node, CachedPrediction(int(prediction), int(hops)))
                for node, prediction, hops in entries
            ),
        )

    def invalidate(
        self, namespace: str, nodes: Iterable[int] | None = None
    ) -> int:
        """Evict ``nodes`` (or the whole namespace); returns entries dropped."""
        return self._rows.invalidate(namespace, nodes)

    def clear(self) -> None:
        self._rows.clear()

    def snapshot(self) -> dict[str, float]:
        """Flat counter/rate dict (:class:`repro.obs.StatsSource`)."""
        return self._rows.snapshot()

    def reset(self) -> None:
        """Zero the counters; cached predictions stay resident."""
        self._rows.reset()

    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        return self._rows.capacity

    @property
    def ttl_s(self) -> float | None:
        return self._rows.ttl_s

    @property
    def stats(self) -> CacheStats:
        return self._rows.stats

    @property
    def expirations(self) -> int:
        return self._rows.expirations

    @property
    def invalidations(self) -> int:
        return self._rows.invalidations

    @property
    def stale_hits(self) -> int:
        return self._rows.stale_hits

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"EmbeddingStore(size={len(self)}/{self.capacity}, "
            f"ttl={self.ttl_s}, hit_rate={s.hit_rate:.2f})"
        )
