"""Online inference for decoupled GNNs: the request path of the library.

The decoupled taxonomy branch (SGC/SCARA/PPRGo) moves all sparse graph
work into precompute, which makes *serving* a pure data-management
problem: keep the precomputed hop stacks warm (:class:`ModelRegistry`),
amortise per-request overhead (:class:`BatchingQueue` micro-batching with
load-shedding admission control), reuse answered predictions
(:class:`EmbeddingStore`, content-fingerprint keyed, TTL-bounded), exit
early on confident nodes (NAI), and absorb streaming edge insertions by
recomputing only the dirty K-hop rows (:mod:`repro.serving.invalidation`).
:class:`ServingEngine` wires the pieces into one facade with per-request
p50/p95/p99 latency accounting, and :class:`ServingRuntime` runs that
facade concurrently — a batcher thread draining the queue into a worker
pool, with futures-based submission, per-request timeouts, and bounded
retry.
"""

from repro.serving.batching import BatchingQueue, PredictRequest
from repro.serving.engine import ServeResult, ServingEngine
from repro.serving.invalidation import (
    UpdateReport,
    dirty_frontiers,
    patch_stack,
)
from repro.serving.registry import ModelRegistry, ServedModel
from repro.serving.router import ShardRouter
from repro.serving.runtime import ServingRuntime
from repro.serving.store import CachedPrediction, EmbeddingStore

__all__ = [
    "ServingEngine",
    "ServingRuntime",
    "ShardRouter",
    "ServeResult",
    "ModelRegistry",
    "ServedModel",
    "BatchingQueue",
    "PredictRequest",
    "EmbeddingStore",
    "CachedPrediction",
    "UpdateReport",
    "dirty_frontiers",
    "patch_stack",
]
