"""Concurrent serving runtime: batcher thread + worker pool + futures.

:class:`ServingRuntime` turns the single-threaded
:class:`~repro.serving.engine.ServingEngine` into a concurrent service.
Producer threads submit requests through :meth:`ServingRuntime.predict`
or :meth:`ServingRuntime.predict_async`; a dedicated *batcher* thread
drains the engine's :class:`~repro.serving.batching.BatchingQueue` under
the existing max-batch/max-wait policy and dispatches each micro-batch
to a bounded worker pool, which executes it through
:meth:`~repro.serving.engine.ServingEngine.run_batch` and resolves the
per-request :class:`concurrent.futures.Future` objects.

The division of labour:

* **admission** happens synchronously on the caller's thread — a store
  hit is answered immediately without entering the queue, and a full
  queue raises :class:`~repro.errors.LoadSheddingError` at submit time;
* **batching** is owned by exactly one thread, so the queue's FIFO
  seniority and the max-wait deadline are enforced in one place (the
  batcher sleeps precisely until the oldest request's deadline, not on
  a polling interval);
* **execution** overlaps across the pool: per-batch model forwards and
  store writes from different micro-batches proceed concurrently, which
  is where throughput scaling comes from when per-batch service time is
  dominated by lock-releasing work (BLAS kernels, I/O waits);
* **failure** is bounded *and classified*: a batch that raises a
  transient error (:func:`repro.resilience.classify_error`) is retried
  under the runtime's :class:`~repro.resilience.RetryPolicy` (capped
  exponential backoff with jitter); a permanent error fails every future
  in the batch immediately with zero retries. Outcomes feed a per-model
  :class:`~repro.resilience.CircuitBreaker` — when a model's breaker
  opens, new requests for it are answered from TTL-expired store rows
  (``degraded=True``) when possible and rejected with
  :class:`~repro.errors.CircuitOpenError` otherwise.

The wrapped engine must be constructed ``threadsafe=True`` (the runtime
builds one that way by default); its inline ``predict``/``predict_many``
path is disabled while attached, because two drainers on one queue would
steal each other's batches.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Sequence

import numpy as np

from repro import obs
from repro.errors import (
    CircuitOpenError,
    ConfigError,
    LoadSheddingError,
    ServingError,
    ServingTimeoutError,
)
from repro.resilience.breaker import CLOSED, STATE_CODES, CircuitBreaker
from repro.resilience.retry import PERMANENT, RetryPolicy, classify_error
from repro.serving.batching import PredictRequest
from repro.serving.engine import ServeResult, ServingEngine
from repro.serving.registry import ServedModel
from repro.utils.validation import check_int_range

_LOG = obs.get_logger("repro.serving.runtime")


class ServingRuntime:
    """Thread-safe façade over a :class:`ServingEngine`.

    Parameters
    ----------
    engine:
        The engine to serve through; when omitted a fresh
        ``ServingEngine(threadsafe=True, **engine_kwargs)`` is built.
        An injected engine must have been constructed thread-safe.
    n_workers:
        Worker threads executing micro-batches concurrently.
    max_retries:
        How many times a failed batch is re-executed before its
        requests fail. ``0`` disables retry. Only *transient* failures
        are retried at all — permanent errors fail fast regardless.
    default_timeout_s:
        Deadline applied by :meth:`predict`/:meth:`predict_many` when
        the call doesn't pass its own; ``None`` waits indefinitely.
    retry_policy:
        Backoff schedule for transient retries. When omitted a seeded
        :class:`~repro.resilience.RetryPolicy` is built from
        ``max_retries`` with short delays suited to micro-batch serving;
        when given, its ``max_retries`` takes precedence.
    breaker_factory:
        Zero/keyword-arg callable building one per-model
        :class:`~repro.resilience.CircuitBreaker` lazily on first use.
        Pass ``None`` to disable circuit breaking entirely.
    breaker_kwargs:
        Keyword arguments for ``breaker_factory``.
    stale_fallback:
        While a model's breaker is open, answer from TTL-expired store
        rows (``degraded=True``) instead of rejecting, when a stale row
        exists. ``False`` always rejects with
        :class:`~repro.errors.CircuitOpenError`.
    slo_monitor:
        Optional :class:`~repro.obs.telemetry.SloMonitor`; every
        executed request's latency and outcome is recorded against it
        (labelled ``model=<key>``), and it is registered as a stats
        source under ``<source_prefix>.slo``. Pair its rules'
        ``on_breach`` with :meth:`trip_breaker` to pre-emptively open a
        model's circuit on a latency/error-budget violation.
    source_prefix:
        The :mod:`repro.obs` stats-source prefix this runtime registers
        under. Give each runtime of a multi-runtime deployment (e.g. the
        per-shard runtimes of a
        :class:`~repro.serving.router.ShardRouter`) its own prefix, or
        they all clobber one ``serving.runtime`` slot.
    """

    def __init__(
        self,
        engine: ServingEngine | None = None,
        n_workers: int = 2,
        max_retries: int = 1,
        default_timeout_s: float | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_factory=CircuitBreaker,
        breaker_kwargs: dict | None = None,
        stale_fallback: bool = True,
        slo_monitor=None,
        source_prefix: str = "serving.runtime",
        **engine_kwargs,
    ) -> None:
        check_int_range("n_workers", n_workers, 1)
        check_int_range("max_retries", max_retries, 0)
        if engine is None:
            engine = ServingEngine(threadsafe=True, **engine_kwargs)
        elif engine_kwargs:
            raise ConfigError(
                "engine_kwargs are only used when the runtime builds its "
                f"own engine; got both an engine and {sorted(engine_kwargs)}"
            )
        if not engine.threadsafe:
            raise ConfigError(
                "ServingRuntime needs an engine constructed threadsafe=True"
            )
        if engine._runtime is not None:
            raise ServingError("engine is already attached to a ServingRuntime")
        self.engine = engine
        self.n_workers = int(n_workers)
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_retries=max_retries,
                base_delay_s=0.002,
                max_delay_s=0.1,
                jitter=0.5,
                seed=0,
            )
        self.retry_policy = retry_policy
        self.max_retries = int(retry_policy.max_retries)
        self.default_timeout_s = default_timeout_s
        self.stale_fallback = bool(stale_fallback)
        self._breaker_factory = breaker_factory
        self._breaker_kwargs = dict(breaker_kwargs or {})
        self._breakers: dict[str, CircuitBreaker] = {}
        # One-attribute-check guard for the submit hot path: False until
        # any breaker leaves the closed state, so healthy serving never
        # pays a breaker lock per request (mirrors FAULTS.active).
        self._tripped = False
        self._cond = threading.Condition()
        self._futures: dict[int, Future] = {}
        # request_id -> absolute deadline (engine clock), recorded at
        # submit so the retry loop can stop backing off once no pending
        # request in the batch could still be answered in time.
        self._deadlines: dict[int, float] = {}
        self._closing = False
        self._closed = False
        self.batches_executed = 0
        self.retries = 0
        self.degraded = 0
        self.failed_fast = 0
        self._stats_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-serve"
        )
        self._batcher = threading.Thread(
            target=self._batcher_loop, name="repro-batcher", daemon=True
        )
        self.slo_monitor = slo_monitor
        self.source_prefix = str(source_prefix)
        engine._runtime = self
        obs.register_source(self.source_prefix, self)
        if slo_monitor is not None:
            obs.register_source(f"{self.source_prefix}.slo", slo_monitor)
        self._batcher.start()

    # ------------------------------------------------------------------ #
    # Circuit breakers / degradation
    # ------------------------------------------------------------------ #

    def breaker(self, model_key: str) -> CircuitBreaker | None:
        """The model's breaker (created lazily), or ``None`` if disabled."""
        if self._breaker_factory is None:
            return None
        with self._stats_lock:
            breaker = self._breakers.get(model_key)
            if breaker is None:
                breaker = self._breaker_factory(**self._breaker_kwargs)
                self._breakers[model_key] = breaker
            return breaker

    def _publish_breaker(self, model_key: str, breaker: CircuitBreaker) -> None:
        if obs.OBS.enabled:
            obs.OBS.registry.gauge("breaker.state").set(
                STATE_CODES[breaker.state], model=model_key
            )

    def trip_breaker(self, model_key: str | None = None) -> bool:
        """Force a model's circuit open (``None`` = the default model).

        The hook an :class:`~repro.obs.telemetry.SloMonitor` breach rule
        calls: the breaker opens *before* the failure-rate window would
        have, new requests degrade to stale answers or
        :class:`~repro.errors.CircuitOpenError`, and the normal cooldown
        → probe recovery applies. Returns ``False`` when circuit
        breaking is disabled.
        """
        if model_key is None:
            model_key = self.engine._resolve(None).key
        breaker = self.breaker(model_key)
        if breaker is None:
            return False
        breaker.trip()
        with self._stats_lock:
            self._tripped = True
        self._publish_breaker(model_key, breaker)
        _LOG.warning("breaker for model %r tripped externally", model_key)
        return True

    def _record_slo(
        self,
        batch: list[PredictRequest],
        results: dict[int, ServeResult] | None,
        model_key: str,
    ) -> None:
        """Feed one executed batch's outcomes to the SLO monitor."""
        if self.slo_monitor is None:
            return
        if results is None:
            for _ in batch:
                self.slo_monitor.record(None, ok=False, model=model_key)
            return
        for request in batch:
            result = results.get(request.request_id)
            if result is not None:
                self.slo_monitor.record(
                    result.latency_s,
                    ok=result.status == "ok",
                    model=model_key,
                )

    def _stale_result(
        self, record: ServedModel, node_id: int, t0: float
    ) -> ServeResult | None:
        """A degraded answer from a resident (possibly expired) store row,
        or ``None`` when no row exists / fallback is disabled."""
        if not self.stale_fallback or self.engine.store is None:
            return None
        cached = self.engine.store.get_stale(record.namespace, node_id)
        if cached is None:
            return None
        with self._stats_lock:
            self.degraded += 1
        latency = self.engine._clock() - t0
        self.engine.latency.record(latency)
        if obs.OBS.enabled:
            obs.OBS.registry.counter("serving.degraded_responses").inc(
                model=record.key
            )
        _LOG.debug(
            "degraded answer for node %d (%s breaker open)",
            node_id, record.key,
        )
        return ServeResult(
            node_id, record.key, cached.prediction, "ok", True,
            cached.hops_used, latency, degraded=True,
        )

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def _submit(
        self,
        record: ServedModel,
        node_id: int,
        deadline: float | None = None,
    ) -> tuple[str, ServeResult | Future]:
        """Admit one request: ``("hit", result)`` | ``("shed", result)``
        | ``("degraded", result)`` | ``("queued", future)``. Runs on the
        caller's thread; raises :class:`~repro.errors.CircuitOpenError`
        when the model's breaker is open and no stale row is resident."""
        n = record.graph.n_nodes
        if not 0 <= node_id < n:
            raise ServingError(f"node {node_id} outside [0, {n})")
        # Unlocked pre-check so store hits are refused too (monotonic
        # False->True flag; the queued path re-checks under the lock).
        if self._closing:
            raise ServingError("runtime is closed; no new requests accepted")
        t0 = self.engine._clock()
        # Breaker gate FIRST, and only once some breaker has tripped (the
        # `_tripped` flag keeps healthy serving at one attribute check).
        # Ordering matters: a regular store ``get`` *evicts* TTL-expired
        # rows, which would destroy the very copy the stale fallback is
        # about to serve — so while the breaker is open we read through
        # ``get_stale`` (which serves live and expired rows alike and
        # leaves residency untouched) instead of the normal hit path.
        gated: CircuitBreaker | None = None
        if self._tripped:
            breaker = self.breaker(record.key)
            if breaker is not None:
                if not breaker.allow():
                    result = self._stale_result(record, node_id, t0)
                    if result is not None:
                        return ("degraded", result)
                    raise CircuitOpenError(
                        f"circuit for model {record.key!r} is open and no "
                        f"stale prediction for node {node_id} is resident"
                    )
                # Admitted — possibly holding a half-open probe slot. Any
                # resolution below that never reaches _execute_batch
                # (store hit, shed, aborted submit) says nothing about
                # backend health and must hand the slot back, or a
                # 1-probe breaker would stay wedged half-open forever.
                gated = breaker
        try:
            hit = self.engine.try_store(record, node_id, t0)
            if hit is not None:
                return ("hit", hit)
            with self._cond:
                if self._closing:
                    raise ServingError(
                        "runtime is closed; no new requests accepted"
                    )
                try:
                    request = self.engine.queue.submit(node_id, record.key)
                except LoadSheddingError:
                    shed = self.engine.record_shed(record, node_id, t0)
                    return ("shed", shed)
                future: Future = Future()
                self._futures[request.request_id] = future
                if deadline is not None:
                    self._deadlines[request.request_id] = deadline
                self._cond.notify_all()
            # Queued: _execute_batch records the probe's actual verdict.
            gated = None
            return ("queued", future)
        finally:
            if gated is not None:
                gated.release_probe()

    def predict_async(
        self, node_id: int, model: str | None = None
    ) -> Future:
        """Submit one request; returns a future resolving to a
        :class:`~repro.serving.engine.ServeResult`.

        A store hit resolves immediately; a full queue raises
        :class:`~repro.errors.LoadSheddingError` here, synchronously —
        admission control answers at submit time, not on the future. An
        open circuit breaker resolves immediately with a stale
        ``degraded=True`` answer when one is resident, and raises
        :class:`~repro.errors.CircuitOpenError` otherwise.
        """
        record = self.engine._resolve(model)
        kind, payload = self._submit(record, int(node_id))
        if kind == "queued":
            return payload
        future: Future = Future()
        if kind in ("hit", "degraded"):
            future.set_result(payload)
            return future
        # Shed: account for it, then surface the typed error.
        raise LoadSheddingError(
            f"queue full ({self.engine.queue.max_queue} pending); request "
            f"for node {payload.node_id} shed"
        )

    def predict(
        self,
        node_id: int,
        model: str | None = None,
        timeout_s: float | None = None,
    ) -> ServeResult:
        """Blocking single-request API with a per-call deadline.

        Raises :class:`~repro.errors.ServingTimeoutError` when the
        deadline elapses (the batch may still complete in the
        background) and :class:`~repro.errors.LoadSheddingError` when
        admission control rejects the request.

        The deadline is recorded at submit time, so the batch executor's
        retry loop stops backing off (and never sleeps) once the next
        worst-case backoff could not finish before it.
        """
        record = self.engine._resolve(model)
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        deadline = (
            None if timeout is None else self.engine._clock() + timeout
        )
        kind, payload = self._submit(record, int(node_id), deadline=deadline)
        if kind in ("hit", "degraded"):
            return payload
        if kind == "shed":
            raise LoadSheddingError(
                f"queue full ({self.engine.queue.max_queue} pending); "
                f"request for node {payload.node_id} shed"
            )
        try:
            return payload.result(timeout)
        except FutureTimeoutError:
            raise ServingTimeoutError(
                f"request for node {node_id} exceeded its {timeout}s deadline"
            ) from None

    def predict_many(
        self,
        node_ids: Sequence[int] | np.ndarray,
        model: str | None = None,
        timeout_s: float | None = None,
    ) -> list[ServeResult]:
        """Submit a stream of requests and wait for every answer.

        Mirrors the engine's inline semantics: shed requests come back
        as ``status="shed"`` results (not exceptions) so the returned
        list always aligns with ``node_ids``. The timeout bounds the
        total wait across the whole call.
        """
        record = self.engine._resolve(model)
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        deadline = (
            None if timeout is None else self.engine._clock() + timeout
        )
        slots: list[ServeResult | Future] = [
            payload for payload in (
                self._submit(record, int(node_id), deadline=deadline)[1]
                for node_id in node_ids
            )
        ]
        results: list[ServeResult] = []
        for node_id, slot in zip(node_ids, slots):
            if isinstance(slot, ServeResult):
                results.append(slot)
                continue
            remaining = (
                None if deadline is None
                else max(deadline - self.engine._clock(), 0.0)
            )
            try:
                results.append(slot.result(remaining))
            except FutureTimeoutError:
                raise ServingTimeoutError(
                    f"request for node {int(node_id)} exceeded the "
                    f"{timeout}s batch deadline"
                ) from None
        return results

    # ------------------------------------------------------------------ #
    # Batcher thread
    # ------------------------------------------------------------------ #

    def _batcher_loop(self) -> None:
        queue = self.engine.queue
        while True:
            with self._cond:
                while not self._closing and not queue.ready():
                    age = queue.oldest_age()
                    if age is None:
                        self._cond.wait()
                    else:
                        # Sleep exactly until the head request's max-wait
                        # deadline; an earlier submit re-notifies us.
                        self._cond.wait(max(queue.max_wait_s - age, 0.0))
                if self._closing and len(queue) == 0:
                    return
            batch = queue.next_batch(force=self._closing)
            if batch:
                self._pool.submit(self._execute_batch, batch)

    def _execute_batch(self, batch: list[PredictRequest]) -> None:
        model_key = batch[0].model_key
        breaker = self.breaker(model_key)
        retries_done = 0
        while True:
            try:
                results = self.engine.run_batch(batch)
                break
            except Exception as exc:  # noqa: BLE001 - classified below
                if breaker is not None:
                    breaker.record_failure()
                    if breaker.state != CLOSED:
                        # Cold path (a batch just failed): raise the flag
                        # under the stats lock, matching how it is
                        # cleared below. _submit reads it lock-free by
                        # design — worst case one request slips past the
                        # gate at the trip instant, which the breaker's
                        # own allow() still arbitrates.
                        with self._stats_lock:
                            self._tripped = True
                    self._publish_breaker(model_key, breaker)
                remaining = self._batch_remaining_s(batch)
                if not self.retry_policy.should_retry(
                    exc, retries_done, remaining_s=remaining
                ):
                    if classify_error(exc) == PERMANENT:
                        # Fail fast: a deterministic failure (bad model,
                        # shape bug) never earns a retry.
                        with self._stats_lock:
                            self.failed_fast += 1
                        _LOG.warning(
                            "batch of %d failed permanently "
                            "(%s, no retry): %s",
                            len(batch), type(exc).__name__, exc,
                        )
                    else:
                        _LOG.warning(
                            "batch of %d failed after %d retry(ies): %s",
                            len(batch), retries_done, exc,
                        )
                    self._record_slo(batch, None, model_key)
                    self._resolve_futures(batch, None, exc)
                    return
                retries_done += 1
                with self._stats_lock:
                    self.retries += 1
                _LOG.debug(
                    "retrying batch of %d (retry %d/%d) after %s",
                    len(batch), retries_done, self.max_retries, exc,
                )
                self.retry_policy.backoff(retries_done, remaining_s=remaining)
                if breaker is not None and not breaker.allow():
                    # The breaker opened while we were backing off —
                    # stop hammering and surface the last failure.
                    self._record_slo(batch, None, model_key)
                    self._resolve_futures(batch, None, exc)
                    return
        if breaker is not None:
            breaker.record_success()
            self._publish_breaker(model_key, breaker)
            if self._tripped:
                # Drop the submit-path guard once every breaker is closed
                # again (cold path: only runs while degraded).
                with self._stats_lock:
                    self._tripped = any(
                        b.state != CLOSED for b in self._breakers.values()
                    )
        with self._stats_lock:
            self.batches_executed += 1
        self._record_slo(batch, results, model_key)
        self._resolve_futures(batch, results, None)

    def _batch_remaining_s(self, batch: list[PredictRequest]) -> float | None:
        """Time left before the *earliest* deadline in the batch, or
        ``None`` when no request in the batch carries one.

        The tightest deadline governs the retry budget: once it cannot
        absorb the next worst-case backoff, retrying only delays the
        timeout every waiter is already guaranteed to hit.
        """
        with self._cond:
            deadlines = [
                self._deadlines[request.request_id]
                for request in batch
                if request.request_id in self._deadlines
            ]
        if not deadlines:
            return None
        return min(deadlines) - self.engine._clock()

    def _resolve_futures(
        self,
        batch: list[PredictRequest],
        results: dict[int, ServeResult] | None,
        error: Exception | None,
    ) -> None:
        with self._cond:
            futures = [
                (request, self._futures.pop(request.request_id, None))
                for request in batch
            ]
            for request in batch:
                self._deadlines.pop(request.request_id, None)
        # Resolve outside the condition: a future's callbacks (or a
        # waiter waking immediately) must never run under our lock.
        for request, future in futures:
            if future is None:
                continue
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(results[request.request_id])

    # ------------------------------------------------------------------ #
    # Updates / lifecycle
    # ------------------------------------------------------------------ #

    def apply_update(self, u: int, v: int, model: str | None = None):
        """Thread-safe passthrough to :meth:`ServingEngine.apply_update`."""
        return self.engine.apply_update(u, v, model=model)

    def apply_updates(self, edges, model: str | None = None):
        """Thread-safe passthrough to :meth:`ServingEngine.apply_updates`."""
        return self.engine.apply_updates(edges, model=model)

    def register(self, *args, **kwargs) -> str:
        """Passthrough to :meth:`ServingEngine.register`."""
        return self.engine.register(*args, **kwargs)

    def close(self, timeout_s: float | None = None) -> None:
        """Drain and shut down: stop admissions, flush the queue, join
        the batcher, wait for in-flight batches, fail leftover futures.

        Idempotent; after it returns the engine is detached and usable
        inline again.
        """
        with self._cond:
            if self._closed:
                return
            self._closing = True
            self._cond.notify_all()
        self._batcher.join(timeout_s)
        self._pool.shutdown(wait=True)
        with self._cond:
            leftovers = list(self._futures.values())
            self._futures.clear()
            self._deadlines.clear()
            self._closed = True
        for future in leftovers:  # defensive: drain should have emptied these
            future.set_exception(
                ServingError("runtime closed before the request was answered")
            )
        self.engine._runtime = None
        _LOG.info(
            "runtime closed: %d batches executed, %d retries",
            self.batches_executed, self.retries,
        )

    def __enter__(self) -> "ServingRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    def snapshot(self) -> dict[str, float]:
        """Flat counter dict (:class:`repro.obs.StatsSource`).

        Includes the live queue depth and each lazily-created breaker's
        state code (0 closed / 1 half-open / 2 open), labelled by model,
        so a coordinator-side snapshot shows every shard's admission
        pressure and circuit health in one read.
        """
        with self._stats_lock:
            executed, retries = self.batches_executed, self.retries
            degraded, failed_fast = self.degraded, self.failed_fast
            breakers = dict(self._breakers)
        open_breakers = sum(
            1 for b in breakers.values() if b.state != "closed"
        )
        with self._cond:
            pending = len(self._futures)
        out = {
            "n_workers": self.n_workers,
            "batches_executed": executed,
            "retries": retries,
            "degraded_responses": degraded,
            "failed_fast": failed_fast,
            "breakers": len(breakers),
            "breakers_open": open_breakers,
            "pending_futures": pending,
            "queue_depth": float(len(self.engine.queue)),
            "closed": float(self._closed),
        }
        for model_key, breaker in breakers.items():
            out[f"breaker_state{{model={model_key}}}"] = float(
                STATE_CODES[breaker.state]
            )
        return out

    def reset(self) -> None:
        """Zero the runtime counters (in-flight state is untouched)."""
        with self._stats_lock:
            self.batches_executed = 0
            self.retries = 0
            self.degraded = 0
            self.failed_fast = 0

    def stats(self) -> dict:
        """Runtime + engine accounting in one report."""
        report = self.engine.stats()
        report["runtime"] = self.snapshot()
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServingRuntime(workers={self.n_workers}, "
            f"batches={self.batches_executed}, retries={self.retries}, "
            f"closed={self._closed})"
        )
