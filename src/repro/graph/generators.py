"""Synthetic graph generators.

These stand in for the industrial graphs the tutorial motivates (social,
e-commerce, road, citation networks): Barabási–Albert for power-law degree
skew, stochastic block models for community structure and controllable
homophily, Erdős–Rényi for unstructured baselines, and deterministic
families (ring, grid, path, star, caveman) whose spectra and distances are
known in closed form — ideal for testing spectral filters and indexes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.core import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_int_range, check_probability


def erdos_renyi_graph(n: int, p: float, seed=None) -> Graph:
    """G(n, p) random undirected graph (no self-loops)."""
    check_int_range("n", n, 1)
    check_probability("p", p)
    rng = as_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(len(iu)) < p
    edges = np.column_stack([iu[mask], ju[mask]])
    return Graph.from_edges(edges, n)


def barabasi_albert_graph(n: int, m: int, seed=None) -> Graph:
    """Preferential-attachment graph with ``m`` edges per new node.

    Produces the heavy-tailed degree distributions typical of social and
    e-commerce graphs, the regime where hub-aware techniques (importance
    sampling, degree-dependent propagation) matter.
    """
    check_int_range("n", n, 2)
    check_int_range("m", m, 1, n - 1)
    rng = as_rng(seed)
    # Start from a star on m+1 nodes so every node has degree >= 1.
    edges: list[tuple[int, int]] = [(i, m) for i in range(m)]
    # repeated_nodes holds one entry per edge endpoint: sampling uniformly
    # from it is sampling proportionally to degree.
    repeated: list[int] = [i for e in edges for i in e]
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(repeated[rng.integers(len(repeated))]))
        for t in targets:
            edges.append((new, t))
            repeated.extend((new, t))
    return Graph.from_edges(np.asarray(edges, dtype=np.int64), n)


def stochastic_block_model(
    sizes: list[int],
    p_matrix: np.ndarray,
    seed=None,
) -> Graph:
    """Undirected SBM with community sizes ``sizes`` and link probs ``p_matrix``.

    The returned graph carries block memberships as labels ``y``.
    """
    p_matrix = np.asarray(p_matrix, dtype=np.float64)
    k = len(sizes)
    if p_matrix.shape != (k, k):
        raise ConfigError(f"p_matrix must be ({k}, {k}), got {p_matrix.shape}")
    if not np.allclose(p_matrix, p_matrix.T):
        raise ConfigError("p_matrix must be symmetric for an undirected SBM")
    if np.any(p_matrix < 0) or np.any(p_matrix > 1):
        raise ConfigError("p_matrix entries must be probabilities")
    rng = as_rng(seed)
    n = int(sum(sizes))
    blocks = np.repeat(np.arange(k), sizes)
    starts = np.concatenate([[0], np.cumsum(sizes)])
    edge_chunks: list[np.ndarray] = []
    for a in range(k):
        for b in range(a, k):
            p = p_matrix[a, b]
            if p == 0.0:
                continue
            if a == b:
                iu, ju = np.triu_indices(sizes[a], k=1)
                iu, ju = iu + starts[a], ju + starts[a]
            else:
                iu, ju = np.meshgrid(
                    np.arange(starts[a], starts[a + 1]),
                    np.arange(starts[b], starts[b + 1]),
                    indexing="ij",
                )
                iu, ju = iu.ravel(), ju.ravel()
            mask = rng.random(len(iu)) < p
            if mask.any():
                edge_chunks.append(np.column_stack([iu[mask], ju[mask]]))
    edges = (
        np.concatenate(edge_chunks)
        if edge_chunks
        else np.empty((0, 2), dtype=np.int64)
    )
    return Graph.from_edges(edges, n, y=blocks)


def ring_graph(n: int) -> Graph:
    """Cycle on ``n`` nodes. Laplacian eigenvalues are 2 - 2 cos(2πk/n)."""
    check_int_range("n", n, 3)
    nodes = np.arange(n)
    edges = np.column_stack([nodes, (nodes + 1) % n])
    return Graph.from_edges(edges, n)


def path_graph(n: int) -> Graph:
    """Simple path 0-1-...-(n-1); the long-range-dependency testbed."""
    check_int_range("n", n, 2)
    nodes = np.arange(n - 1)
    edges = np.column_stack([nodes, nodes + 1])
    return Graph.from_edges(edges, n)


def grid_graph(rows: int, cols: int) -> Graph:
    """2D 4-neighbour grid, a road-network-like planar graph."""
    check_int_range("rows", rows, 1)
    check_int_range("cols", cols, 1)
    idx = np.arange(rows * cols).reshape(rows, cols)
    right = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    return Graph.from_edges(np.concatenate([right, down]), rows * cols)


def star_graph(n: int) -> Graph:
    """Star with centre 0 and ``n - 1`` leaves; the extreme hub graph."""
    check_int_range("n", n, 2)
    leaves = np.arange(1, n)
    edges = np.column_stack([np.zeros(n - 1, dtype=np.int64), leaves])
    return Graph.from_edges(edges, n)


def complete_graph(n: int) -> Graph:
    check_int_range("n", n, 1)
    iu, ju = np.triu_indices(n, k=1)
    return Graph.from_edges(np.column_stack([iu, ju]), n)


def caveman_graph(n_cliques: int, clique_size: int) -> Graph:
    """Connected caveman graph: cliques chained into a ring.

    A classic high-clustering, high-diameter topology where graph partitioning
    achieves near-zero edge cut.
    """
    check_int_range("n_cliques", n_cliques, 2)
    check_int_range("clique_size", clique_size, 2)
    n = n_cliques * clique_size
    chunks: list[np.ndarray] = []
    for c in range(n_cliques):
        base = c * clique_size
        iu, ju = np.triu_indices(clique_size, k=1)
        chunks.append(np.column_stack([iu + base, ju + base]))
        # Bridge the last node of this clique to the first of the next.
        nxt = ((c + 1) % n_cliques) * clique_size
        chunks.append(np.array([[base + clique_size - 1, nxt]]))
    labels = np.repeat(np.arange(n_cliques), clique_size)
    return Graph.from_edges(np.concatenate(chunks), n, y=labels)
