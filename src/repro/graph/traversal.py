"""Classic graph traversal: BFS, connected components, k-hop neighbourhoods.

These routines double as (a) substrates for samplers and subgraph extraction
and (b) the exact baselines that indexes such as hub labeling are benchmarked
against.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph

UNREACHED = -1


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every node (-1 when unreachable)."""
    if not 0 <= source < graph.n_nodes:
        raise GraphError(f"source {source} outside [0, {graph.n_nodes})")
    dist = np.full(graph.n_nodes, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        neigh = np.concatenate([graph.neighbors(u) for u in frontier])
        neigh = np.unique(neigh)
        fresh = neigh[dist[neigh] == UNREACHED]
        dist[fresh] = level
        frontier = fresh
    return dist


def shortest_path_distance(graph: Graph, source: int, target: int) -> int:
    """Exact hop distance between two nodes via bidirectional BFS.

    Returns -1 when disconnected. This is the baseline that hub labeling
    (§3.2.2) accelerates.
    """
    if source == target:
        return 0
    seen_s = {source: 0}
    seen_t = {target: 0}
    front_s, front_t = deque([source]), deque([target])
    dist_s, dist_t = 0, 0
    while front_s and front_t:
        # Expand the smaller frontier.
        if len(front_s) <= len(front_t):
            dist_s += 1
            best = _expand(graph, front_s, seen_s, seen_t, dist_s)
        else:
            dist_t += 1
            best = _expand(graph, front_t, seen_t, seen_s, dist_t)
        if best is not None:
            return best
    return UNREACHED


def _expand(graph, frontier, seen_self, seen_other, depth) -> int | None:
    best: int | None = None
    for _ in range(len(frontier)):
        u = frontier.popleft()
        for v in graph.neighbors(u):
            v = int(v)
            if v in seen_self:
                continue
            seen_self[v] = depth
            if v in seen_other:
                total = depth + seen_other[v]
                best = total if best is None else min(best, total)
            frontier.append(v)
    return best


def bfs_tree(graph: Graph, source: int) -> np.ndarray:
    """BFS parent array (parent of the source is itself; -1 unreachable)."""
    parent = np.full(graph.n_nodes, UNREACHED, dtype=np.int64)
    parent[source] = source
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            v = int(v)
            if parent[v] == UNREACHED:
                parent[v] = u
                queue.append(v)
    return parent


def connected_components(graph: Graph) -> np.ndarray:
    """Component id per node (directed graphs use weak connectivity)."""
    g = graph.to_undirected() if graph.directed else graph
    comp = np.full(g.n_nodes, UNREACHED, dtype=np.int64)
    cid = 0
    for start in range(g.n_nodes):
        if comp[start] != UNREACHED:
            continue
        comp[start] = cid
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in g.neighbors(u):
                v = int(v)
                if comp[v] == UNREACHED:
                    comp[v] = cid
                    queue.append(v)
        cid += 1
    return comp


def k_hop_neighborhood(
    graph: Graph, seeds: np.ndarray | list[int], k: int
) -> np.ndarray:
    """All nodes within ``k`` hops of any seed (seeds included), sorted.

    The size of this set as a function of ``k`` is exactly the
    "neighborhood explosion" quantity of §3.1.3.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    reached = np.zeros(graph.n_nodes, dtype=bool)
    reached[seeds] = True
    frontier = np.unique(seeds)
    for _ in range(k):
        if not len(frontier):
            break
        neigh = np.concatenate([graph.neighbors(u) for u in frontier])
        neigh = np.unique(neigh)
        fresh = neigh[~reached[neigh]]
        reached[fresh] = True
        frontier = fresh
    return np.flatnonzero(reached)
