"""Graph substrate: immutable CSR graphs, generators, operators, traversal.

This subpackage is the storage layer every other part of the library builds
on. A :class:`~repro.graph.core.Graph` stores adjacency in compressed sparse
row (CSR) form, optionally with edge weights, node features, and labels.
Graphs are immutable: editing operations (sparsification, coarsening,
subgraph induction, ...) return new graphs.
"""

from repro.graph.core import Graph
from repro.graph.generators import (
    barabasi_albert_graph,
    caveman_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    ring_graph,
    star_graph,
    stochastic_block_model,
)
from repro.graph.ops import (
    adjacency_matrix,
    laplacian_matrix,
    normalized_adjacency,
    propagation_matrix,
)
from repro.graph.traversal import (
    bfs_distances,
    bfs_tree,
    connected_components,
    k_hop_neighborhood,
    shortest_path_distance,
)

__all__ = [
    "Graph",
    "barabasi_albert_graph",
    "caveman_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "path_graph",
    "ring_graph",
    "star_graph",
    "stochastic_block_model",
    "adjacency_matrix",
    "laplacian_matrix",
    "normalized_adjacency",
    "propagation_matrix",
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "k_hop_neighborhood",
    "shortest_path_distance",
]
