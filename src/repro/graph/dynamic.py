"""Dynamic graphs and incremental PPR maintenance (§3.4.2).

The tutorial's dynamic-graph direction asks how streaming updates can be
accommodated by scalable GNN pipelines (GENTI [55] streams subgraph
extraction; decoupled models need their embeddings maintained). The core
primitive is *incremental PPR*: keeping a forward-push approximation valid
under edge insertions without recomputing from scratch.

Forward push maintains the exact linear invariant

.. math:: e_s = r + \\tfrac{1}{\\alpha}\\big(I - (1-\\alpha) P^\\top\\big) p,

with row-stochastic :math:`P = D^{-1}A`. An edge insertion ``(u, v)``
changes only rows ``u`` and ``v`` of :math:`P`, so the invariant is
restored *exactly* by the local residual correction

.. math:: r \\mathrel{+}= \\tfrac{1-\\alpha}{\\alpha}\\,
          p_u (P'_u - P_u) + \\tfrac{1-\\alpha}{\\alpha}\\, p_v (P'_v - P_v),

which touches only the old neighbourhoods of the two endpoints. A signed
local push then restores the accuracy guarantee. Cost per update:
:math:`O(d_u + d_v)` plus the (empirically tiny) push work — versus a full
recompute of the push from scratch.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigError, GraphError
from repro.graph.core import Graph
from repro.utils.validation import check_int_range, check_positive


class DynamicGraph:
    """An undirected, unweighted graph supporting edge insertions.

    Adjacency is stored as per-node Python lists (amortised O(1) append);
    :meth:`snapshot` materialises an immutable CSR :class:`Graph` for use
    with the static algorithms. Node features and labels (which edge
    insertions never change) ride along and are carried into every
    snapshot, so downstream consumers — decoupled-model inference in
    particular — see a fully populated :class:`Graph` at each version.
    """

    def __init__(
        self,
        n_nodes: int,
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
    ) -> None:
        check_int_range("n_nodes", n_nodes, 1)
        if x is not None:
            x = np.asarray(x, dtype=np.float64)
            if x.ndim != 2 or x.shape[0] != n_nodes:
                raise ConfigError(
                    f"x must be ({n_nodes}, d), got {x.shape}"
                )
        if y is not None:
            y = np.asarray(y)
            if y.shape != (n_nodes,):
                raise ConfigError(f"y must be ({n_nodes},), got {y.shape}")
        self._adj: list[list[int]] = [[] for _ in range(n_nodes)]
        self._n_edges = 0
        self.x = x
        self.y = y

    @classmethod
    def from_graph(cls, graph: Graph) -> "DynamicGraph":
        if graph.directed:
            raise GraphError("DynamicGraph supports undirected graphs only")
        dyn = cls(graph.n_nodes, x=graph.x, y=graph.y)
        for u in range(graph.n_nodes):
            dyn._adj[u] = [int(v) for v in graph.neighbors(u)]
        dyn._n_edges = graph.n_edges // 2
        return dyn

    @property
    def n_nodes(self) -> int:
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def neighbors(self, node: int) -> list[int]:
        return self._adj[node]

    def has_edge(self, u: int, v: int) -> bool:
        a = self._adj[u] if len(self._adj[u]) <= len(self._adj[v]) else self._adj[v]
        other = v if a is self._adj[u] else u
        return other in a

    def insert_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge (u, v); duplicate/self edges rejected."""
        n = self.n_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) outside [0, {n})")
        if u == v:
            raise GraphError("self-loops are not supported")
        if self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) already present")
        self._adj[u].append(v)
        self._adj[v].append(u)
        self._n_edges += 1

    def snapshot(self) -> Graph:
        """An immutable CSR copy of the current state (features/labels kept)."""
        degrees = [len(a) for a in self._adj]
        indptr = np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)
        indices = np.fromiter(
            (v for adj in self._adj for v in adj), dtype=np.int64,
            count=int(indptr[-1]),
        )
        return Graph(
            indptr, indices, x=self.x, y=self.y, directed=False, validate=False
        )


class IncrementalPPR:
    """Single-source PPR maintained under edge insertions.

    Parameters
    ----------
    dynamic:
        The evolving graph; this object inserts edges *through*
        :meth:`insert_edge` so estimate and graph stay in sync.
    source:
        PPR source node.
    alpha, epsilon:
        Teleport probability and push tolerance (|r_u| <= eps * d_u at
        rest, exactly as static forward push).
    """

    def __init__(
        self,
        dynamic: DynamicGraph,
        source: int,
        alpha: float = 0.15,
        epsilon: float = 1e-5,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
        check_positive("epsilon", epsilon)
        if not 0 <= source < dynamic.n_nodes:
            raise GraphError(f"source {source} outside [0, {dynamic.n_nodes})")
        self.graph = dynamic
        self.source = source
        self.alpha = alpha
        self.epsilon = epsilon
        self.estimate = np.zeros(dynamic.n_nodes)
        self.residual = np.zeros(dynamic.n_nodes)
        self.residual[source] = 1.0
        self.last_push_count = 0
        self._push()

    # ------------------------------------------------------------------ #

    def _push(self) -> None:
        """Signed local push until |r_u| <= eps * d_u everywhere."""
        alpha, eps = self.alpha, self.epsilon
        adj = self.graph
        queue: deque[int] = deque(
            u for u in range(adj.n_nodes)
            if adj.degree(u) > 0 and abs(self.residual[u]) > eps * adj.degree(u)
        )
        in_queue = np.zeros(adj.n_nodes, dtype=bool)
        in_queue[list(queue)] = True
        pushes = 0
        while queue:
            u = queue.popleft()
            in_queue[u] = False
            deg = adj.degree(u)
            if deg == 0 or abs(self.residual[u]) <= eps * deg:
                continue
            mass = self.residual[u]
            self.estimate[u] += alpha * mass
            self.residual[u] = 0.0
            share = (1.0 - alpha) * mass / deg
            pushes += 1
            for v in adj.neighbors(u):
                self.residual[v] += share
                dv = adj.degree(v)
                if not in_queue[v] and abs(self.residual[v]) > eps * dv:
                    queue.append(v)
                    in_queue[v] = True
        self.last_push_count = pushes

    def _row_correction(self, u: int, new_neighbor: int) -> None:
        """Restore the invariant for endpoint ``u`` gaining ``new_neighbor``.

        Must be called *before* the edge is inserted (uses the old
        neighbour list and degree).
        """
        p_u = self.estimate[u]
        if p_u == 0.0:
            return
        d_old = self.graph.degree(u)
        scale = (1.0 - self.alpha) / self.alpha * p_u
        self.residual[new_neighbor] += scale / (d_old + 1)
        if d_old > 0:
            drop = scale / (d_old * (d_old + 1))
            for w in self.graph.neighbors(u):
                self.residual[w] -= drop

    def insert_edge(self, u: int, v: int) -> None:
        """Insert (u, v), restore the invariant locally, and re-push."""
        self._row_correction(u, v)
        self._row_correction(v, u)
        self.graph.insert_edge(u, v)
        self._push()

    # ------------------------------------------------------------------ #

    def check_invariant(self, atol: float = 1e-9) -> bool:
        """Dense verification of the push invariant (testing aid, O(n^2))."""
        snap = self.graph.snapshot()
        deg = np.maximum(snap.degrees(), 1.0)
        p_rw = snap.adjacency().multiply(1.0 / deg[:, None]).tocsr()
        lhs = np.zeros(snap.n_nodes)
        lhs[self.source] = 1.0
        rhs = self.residual + (
            self.estimate - (1.0 - self.alpha) * (p_rw.T @ self.estimate)
        ) / self.alpha
        return bool(np.allclose(lhs, rhs, atol=atol))
