"""Plain-text and NPZ persistence for graphs.

Two formats are supported:

* **Edge-list text** (``.txt``/``.tsv``): one ``src dst [weight]`` triple per
  line, ``#`` comments allowed — the lingua franca of graph repositories.
* **NPZ** (``.npz``): the CSR arrays plus features/labels in one compressed
  file; lossless and fast, used for caching precomputed embeddings.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph


def save_edge_list(graph: Graph, path: str | Path) -> None:
    """Write the stored arcs of ``graph`` as ``src dst weight`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# nodes {graph.n_nodes} directed {int(graph.directed)}\n")
        for src, dst, w in graph.iter_edges():
            fh.write(f"{src} {dst} {w:.10g}\n")


def load_edge_list(
    path: str | Path, n_nodes: int | None = None, directed: bool = False
) -> Graph:
    """Read an edge-list file into a graph.

    A leading ``# nodes N directed D`` header (as written by
    :func:`save_edge_list`) overrides ``n_nodes``/``directed`` when present.
    For undirected files that already store both arc directions, weights of
    duplicate arcs are merged by :meth:`Graph.from_scipy` summing — so we
    deduplicate exact (src, dst) repeats first.
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) >= 4 and parts[0] == "nodes":
                    n_nodes = int(parts[1])
                    directed = bool(int(parts[3]))
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(f"malformed edge line: {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
            weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    if not edges:
        raise GraphError(f"no edges found in {path}")
    arr = np.asarray(edges, dtype=np.int64)
    warr = np.asarray(weights, dtype=np.float64)
    if n_nodes is None:
        n_nodes = int(arr.max()) + 1
    seen: dict[tuple[int, int], int] = {}
    keep: list[int] = []
    for i, (s, d) in enumerate(map(tuple, arr)):
        if (s, d) in seen:
            continue
        seen[(s, d)] = i
        keep.append(i)
    arr, warr = arr[keep], warr[keep]
    if not directed:
        # Keep only one representative per unordered pair; from_edges
        # re-symmetrises.
        canon = np.sort(arr, axis=1)
        _, first = np.unique(canon, axis=0, return_index=True)
        first.sort()
        arr, warr = arr[first], warr[first]
    return Graph.from_edges(arr, n_nodes, weights=warr, directed=directed)


def save_npz(graph: Graph, path: str | Path) -> None:
    """Persist CSR arrays + features/labels to a compressed ``.npz``."""
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "weights": graph.weights,
        "directed": np.array([graph.directed]),
    }
    if graph.x is not None:
        payload["x"] = graph.x
    if graph.y is not None:
        payload["y"] = graph.y
    np.savez_compressed(Path(path), **payload)


def load_npz(path: str | Path) -> Graph:
    """Inverse of :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return Graph(
            data["indptr"],
            data["indices"],
            data["weights"],
            x=data["x"] if "x" in data else None,
            y=data["y"] if "y" in data else None,
            directed=bool(data["directed"][0]),
        )
