"""Plain-text and NPZ persistence for graphs.

Two formats are supported:

* **Edge-list text** (``.txt``/``.tsv``): one ``src dst [weight]`` triple per
  line, ``#`` comments allowed — the lingua franca of graph repositories.
* **NPZ** (``.npz``): the CSR arrays plus features/labels in one compressed
  file; lossless and fast, used for caching precomputed embeddings.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph


def save_edge_list(graph: Graph, path: str | Path) -> None:
    """Write the stored arcs of ``graph`` as ``src dst weight`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# nodes {graph.n_nodes} directed {int(graph.directed)}\n")
        for src, dst, w in graph.iter_edges():
            fh.write(f"{src} {dst} {w:.10g}\n")


def load_edge_list(
    path: str | Path, n_nodes: int | None = None, directed: bool = False
) -> Graph:
    """Read an edge-list file into a graph.

    A leading ``# nodes N directed D`` header (as written by
    :func:`save_edge_list`) overrides ``n_nodes``/``directed`` when present.
    For undirected files that already store both arc directions, weights of
    duplicate arcs are merged by :meth:`Graph.from_scipy` summing — so we
    deduplicate exact (src, dst) repeats first.
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    try:
        with path.open("r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    parts = line[1:].split()
                    if len(parts) >= 4 and parts[0] == "nodes":
                        try:
                            n_nodes = int(parts[1])
                            directed = bool(int(parts[3]))
                        except ValueError as exc:
                            raise GraphError(
                                f"{path}:{lineno}: malformed header "
                                f"{line!r}: {exc}"
                            ) from exc
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise GraphError(
                        f"{path}:{lineno}: malformed edge line: {line!r}"
                    )
                try:
                    edges.append((int(parts[0]), int(parts[1])))
                    weights.append(
                        float(parts[2]) if len(parts) > 2 else 1.0
                    )
                except ValueError as exc:
                    raise GraphError(
                        f"{path}:{lineno}: malformed edge line "
                        f"{line!r}: {exc}"
                    ) from exc
    except OSError as exc:
        raise GraphError(f"cannot read edge list {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise GraphError(
            f"edge list {path} is not valid UTF-8 text: {exc}"
        ) from exc
    if not edges:
        raise GraphError(f"no edges found in {path}")
    arr = np.asarray(edges, dtype=np.int64)
    warr = np.asarray(weights, dtype=np.float64)
    if arr.min() < 0:
        raise GraphError(
            f"edge list {path} names negative node id {int(arr.min())}"
        )
    if n_nodes is None:
        n_nodes = int(arr.max()) + 1
    elif arr.max() >= n_nodes:
        raise GraphError(
            f"edge list {path} names node {int(arr.max())} but declares "
            f"only {n_nodes} nodes"
        )
    seen: dict[tuple[int, int], int] = {}
    keep: list[int] = []
    for i, (s, d) in enumerate(map(tuple, arr)):
        if (s, d) in seen:
            continue
        seen[(s, d)] = i
        keep.append(i)
    arr, warr = arr[keep], warr[keep]
    if not directed:
        # Keep only one representative per unordered pair; from_edges
        # re-symmetrises.
        canon = np.sort(arr, axis=1)
        _, first = np.unique(canon, axis=0, return_index=True)
        first.sort()
        arr, warr = arr[first], warr[first]
    return Graph.from_edges(arr, n_nodes, weights=warr, directed=directed)


def save_npz(graph: Graph, path: str | Path) -> None:
    """Persist CSR arrays + features/labels to a compressed ``.npz``."""
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "weights": graph.weights,
        "directed": np.array([graph.directed]),
    }
    if graph.x is not None:
        payload["x"] = graph.x
    if graph.y is not None:
        payload["y"] = graph.y
    np.savez_compressed(Path(path), **payload)


def load_npz(path: str | Path) -> Graph:
    """Inverse of :func:`save_npz`.

    Corrupt or foreign inputs — a truncated/overwritten zip, an ``.npz``
    missing the CSR arrays, or an edge index pointing past the node
    count — raise :class:`~repro.errors.GraphError` naming the path
    instead of leaking a decoder traceback.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            entries = {name: data[name] for name in data.files}
    except FileNotFoundError:
        raise GraphError(f"graph file {path} does not exist") from None
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError
        raise GraphError(
            f"graph file {path} is corrupt or not an npz archive: {exc}"
        ) from exc
    missing = [k for k in ("indptr", "indices", "weights") if k not in entries]
    if missing:
        raise GraphError(
            f"graph file {path} is missing required arrays {missing}"
        )
    indptr, indices = entries["indptr"], entries["indices"]
    n_nodes = len(indptr) - 1
    if len(indices) and (indices.max() >= n_nodes or indices.min() < 0):
        raise GraphError(
            f"graph file {path} is corrupt: edge indices must lie in "
            f"[0, {n_nodes}), found range "
            f"[{int(indices.min())}, {int(indices.max())}]"
        )
    try:
        return Graph(
            indptr,
            indices,
            entries["weights"],
            x=entries.get("x"),
            y=entries.get("y"),
            directed=bool(entries["directed"][0]) if "directed" in entries
            else False,
        )
    except (GraphError, ValueError, IndexError, KeyError) as exc:
        raise GraphError(
            f"graph file {path} holds inconsistent arrays: {exc}"
        ) from exc
