"""Matrix operators derived from a graph: normalised adjacency, Laplacians.

These are the building blocks of every propagation scheme in the tutorial:
the GCN operator ``D^{-1/2} (A + I) D^{-1/2}``, random-walk transition
matrices for PPR, and normalised Laplacians for spectral filtering.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.graph.core import Graph

_NORMALIZATIONS = ("sym", "rw", "col", "none")
_LAPLACIANS = ("sym", "rw", "comb")


def adjacency_matrix(graph: Graph, self_loops: bool = False) -> sp.csr_matrix:
    """Adjacency of ``graph``, optionally with unit self-loops added.

    With ``self_loops`` this is the renormalisation-trick operator
    :math:`A + I`, built as a single CSR addition (no ``tolil`` round
    trip). Without it, the graph's cached CSR is returned directly —
    ``copy()`` before mutating.
    """
    adj = graph.adjacency()
    if self_loops:
        adj = (adj + sp.eye(graph.n_nodes, format="csr")).tocsr()
    return adj


def _degree_power(adj: sp.csr_matrix, power: float) -> sp.dia_matrix:
    deg = np.asarray(adj.sum(axis=1)).ravel()
    scaled = np.zeros_like(deg)
    np.power(deg, power, where=deg > 0, out=scaled)
    return sp.diags(scaled)


def normalized_adjacency(
    graph: Graph, kind: str = "sym", self_loops: bool = True
) -> sp.csr_matrix:
    """Normalised adjacency operator.

    ``kind`` selects the normalisation:

    - ``"sym"``: :math:`D^{-1/2} A D^{-1/2}` (GCN operator; spectrum in [-1, 1])
    - ``"rw"``: :math:`D^{-1} A` (row-stochastic random-walk operator)
    - ``"col"``: :math:`A D^{-1}` (column-stochastic; PPR push convention)
    - ``"none"``: plain :math:`A`
    """
    if kind not in _NORMALIZATIONS:
        raise ConfigError(f"kind must be one of {_NORMALIZATIONS}, got {kind!r}")
    adj = adjacency_matrix(graph, self_loops=self_loops)
    if kind == "none":
        return adj
    if kind == "sym":
        d = _degree_power(adj, -0.5)
        return (d @ adj @ d).tocsr()
    if kind == "rw":
        return (_degree_power(adj, -1.0) @ adj).tocsr()
    return (adj @ _degree_power(adj, -1.0)).tocsr()


def laplacian_matrix(graph: Graph, kind: str = "sym") -> sp.csr_matrix:
    """Graph Laplacian.

    - ``"comb"``: combinatorial :math:`L = D - A`
    - ``"sym"``: symmetric-normalised :math:`I - D^{-1/2} A D^{-1/2}`
      (eigenvalues in [0, 2])
    - ``"rw"``: random-walk :math:`I - D^{-1} A`
    """
    if kind not in _LAPLACIANS:
        raise ConfigError(f"kind must be one of {_LAPLACIANS}, got {kind!r}")
    adj = graph.adjacency()
    n = graph.n_nodes
    eye = sp.identity(n, format="csr")
    if kind == "comb":
        deg = sp.diags(np.asarray(adj.sum(axis=1)).ravel())
        return (deg - adj).tocsr()
    norm = "sym" if kind == "sym" else "rw"
    return (eye - normalized_adjacency(graph, kind=norm, self_loops=False)).tocsr()


def propagation_matrix(
    graph: Graph, scheme: str = "gcn", alpha: float | None = None
) -> sp.csr_matrix:
    """Named propagation operators used across the model zoo.

    - ``"gcn"``: renormalised GCN operator :math:`\\hat D^{-1/2} \\hat A \\hat D^{-1/2}`
      with :math:`\\hat A = A + I`.
    - ``"rw"``: random-walk operator :math:`D^{-1} A` without self-loops.
    - ``"lazy"``: lazy walk :math:`(1-\\alpha) I + \\alpha D^{-1} A`
      (requires ``alpha``).
    """
    if scheme == "gcn":
        return normalized_adjacency(graph, kind="sym", self_loops=True)
    if scheme == "rw":
        return normalized_adjacency(graph, kind="rw", self_loops=False)
    if scheme == "lazy":
        if alpha is None or not 0.0 < alpha <= 1.0:
            raise ConfigError("lazy walk requires alpha in (0, 1]")
        rw = normalized_adjacency(graph, kind="rw", self_loops=False)
        eye = sp.identity(graph.n_nodes, format="csr")
        return ((1.0 - alpha) * eye + alpha * rw).tocsr()
    raise ConfigError(f"unknown propagation scheme {scheme!r}")
