"""Heterogeneous (knowledge) graphs: typed triples and query-time gathering.

§3.1.1 motivates "knowledge graph retrieval" and §3.3.3 cites TIGER [48],
which "progressively gathers required triples by similarity matching on
heterogeneous knowledge graphs" so that reasoning models train on a small
query-relevant subgraph instead of the full KG.

:class:`KnowledgeGraph` stores (head, relation, tail) triples with
per-entity adjacency; :meth:`gather_for_query` implements the TIGER-style
progressive gathering: starting from the query head, expand for a few
rounds, keeping each round only the triples whose relation is most
relevant to the query relation under a co-occurrence similarity — the
"similarity matching" that bounds how much of the KG a query touches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.utils.rng import as_rng
from repro.utils.validation import check_int_range


@dataclass(frozen=True)
class GatherResult:
    """Outcome of a progressive gather.

    Attributes
    ----------
    triples:
        Gathered triple indices into the KG's triple array.
    entities:
        Entities touched (sorted global ids).
    rounds:
        Expansion rounds actually executed.
    """

    triples: np.ndarray
    entities: np.ndarray
    rounds: int


class KnowledgeGraph:
    """An immutable set of (head, relation, tail) triples.

    Parameters
    ----------
    triples:
        ``(m, 3)`` int array of (head, relation, tail).
    n_entities, n_relations:
        Sizes; inferred from the triples when omitted.
    """

    def __init__(
        self,
        triples: np.ndarray,
        n_entities: int | None = None,
        n_relations: int | None = None,
    ) -> None:
        triples = np.asarray(triples, dtype=np.int64)
        if triples.ndim != 2 or triples.shape[1] != 3:
            raise GraphError(f"triples must be (m, 3), got {triples.shape}")
        if len(triples) == 0:
            raise GraphError("a knowledge graph needs at least one triple")
        self.triples = triples
        self.n_entities = (
            int(max(triples[:, 0].max(), triples[:, 2].max())) + 1
            if n_entities is None
            else n_entities
        )
        self.n_relations = (
            int(triples[:, 1].max()) + 1 if n_relations is None else n_relations
        )
        if triples[:, [0, 2]].max() >= self.n_entities or triples[:, 1].max() >= self.n_relations:
            raise GraphError("triple ids exceed declared sizes")
        self.triples.setflags(write=False)
        # Per-entity incident triple lists (as both head and tail).
        incident: list[list[int]] = [[] for _ in range(self.n_entities)]
        for idx, (h, _, t) in enumerate(triples):
            incident[h].append(idx)
            incident[t].append(idx)
        self._incident = [np.asarray(lst, dtype=np.int64) for lst in incident]

    @property
    def n_triples(self) -> int:
        return len(self.triples)

    def incident_triples(self, entity: int) -> np.ndarray:
        """Indices of triples with ``entity`` as head or tail."""
        if not 0 <= entity < self.n_entities:
            raise GraphError(f"entity {entity} outside [0, {self.n_entities})")
        return self._incident[entity]

    # ------------------------------------------------------------------ #
    # Relation similarity (co-occurrence on shared entities)
    # ------------------------------------------------------------------ #

    def relation_cooccurrence(self) -> np.ndarray:
        """Cosine similarity of relations by their entity incidence.

        Relation r's profile is the (binary-ish) count vector over entities
        it touches; relations used in the same neighbourhoods score high —
        the similarity TIGER matches against the query relation.
        """
        profile = np.zeros((self.n_relations, self.n_entities))
        np.add.at(profile, (self.triples[:, 1], self.triples[:, 0]), 1.0)
        np.add.at(profile, (self.triples[:, 1], self.triples[:, 2]), 1.0)
        norms = np.linalg.norm(profile, axis=1, keepdims=True)
        unit = profile / np.where(norms > 0, norms, 1.0)
        return unit @ unit.T

    # ------------------------------------------------------------------ #
    # TIGER-style progressive gathering
    # ------------------------------------------------------------------ #

    def gather_for_query(
        self,
        head: int,
        relation: int,
        rounds: int = 2,
        per_round_budget: int = 64,
        similarity: np.ndarray | None = None,
    ) -> GatherResult:
        """Gather the most query-relevant triples around ``head``.

        Each round expands the entity frontier, scores the new candidate
        triples by the co-occurrence similarity of their relation with the
        query relation, and keeps the ``per_round_budget`` best — so the
        gathered set grows linearly in the budget regardless of KG size.
        """
        check_int_range("rounds", rounds, 1)
        check_int_range("per_round_budget", per_round_budget, 1)
        if not 0 <= relation < self.n_relations:
            raise GraphError(f"relation {relation} outside [0, {self.n_relations})")
        if similarity is None:
            similarity = self.relation_cooccurrence()
        rel_sim = similarity[relation]
        chosen: set[int] = set()
        entities: set[int] = {head}
        frontier = {head}
        executed = 0
        for _ in range(rounds):
            candidates: set[int] = set()
            for e in frontier:
                candidates.update(map(int, self.incident_triples(e)))
            candidates -= chosen
            if not candidates:
                break
            cand = np.fromiter(candidates, dtype=np.int64)
            scores = rel_sim[self.triples[cand, 1]]
            order = np.lexsort((cand, -scores))
            keep = cand[order[:per_round_budget]]
            chosen.update(map(int, keep))
            new_entities = set(map(int, self.triples[keep][:, [0, 2]].ravel()))
            frontier = new_entities - entities
            entities |= new_entities
            executed += 1
        return GatherResult(
            np.asarray(sorted(chosen), dtype=np.int64),
            np.asarray(sorted(entities), dtype=np.int64),
            executed,
        )

    def subgraph_from_triples(self, triple_ids: np.ndarray) -> "KnowledgeGraph":
        """A KG over the same id spaces restricted to ``triple_ids``."""
        triple_ids = np.asarray(triple_ids, dtype=np.int64)
        if len(triple_ids) == 0:
            raise GraphError("cannot build a KG from zero triples")
        return KnowledgeGraph(
            self.triples[triple_ids], self.n_entities, self.n_relations
        )


def random_knowledge_graph(
    n_entities: int = 200,
    n_relations: int = 8,
    n_triples: int = 1500,
    n_clusters: int = 4,
    seed=None,
) -> KnowledgeGraph:
    """A clustered, *relational* synthetic KG.

    Entities are split into clusters; each relation has a home cluster
    (giving the relation-locality that makes similarity-gathering
    effective) and a functional rule inside it: ``tail = shift(head,
    offset_r)`` within the home cluster for 80% of its triples (noise
    triples elsewhere). The functional part is exactly the translational
    structure KG embeddings are meant to capture, so reasoning quality is
    measurable.
    """
    check_int_range("n_entities", n_entities, 8)
    check_int_range("n_relations", n_relations, 2)
    check_int_range("n_triples", n_triples, n_relations)
    check_int_range("n_clusters", n_clusters, 1)
    rng = as_rng(seed)
    cluster_of_rel = rng.integers(0, n_clusters, size=n_relations)
    offset_of_rel = rng.integers(1, 10, size=n_relations)
    entity_cluster = np.repeat(
        np.arange(n_clusters), int(np.ceil(n_entities / n_clusters))
    )[:n_entities]
    members = [np.flatnonzero(entity_cluster == c) for c in range(n_clusters)]
    triples = np.empty((n_triples, 3), dtype=np.int64)
    for i in range(n_triples):
        r = int(rng.integers(n_relations))
        home = members[cluster_of_rel[r]]
        if rng.random() < 0.8 and len(home) >= 2:
            pos = int(rng.integers(len(home)))
            h = int(home[pos])
            t = int(home[(pos + offset_of_rel[r]) % len(home)])
            if t == h:
                t = int(home[(pos + 1) % len(home)])
        else:
            h, t = (int(v) for v in rng.choice(n_entities, size=2, replace=False))
        triples[i] = (h, r, t)
    return KnowledgeGraph(triples, n_entities, n_relations)
