"""Graph reordering (§3.1.3, [36]): node orderings and locality metrics.

"Can graph reordering speed up GNN training?" [36] studies how relabelling
nodes improves the memory locality of sparse propagation. Implemented
orderings:

* :func:`degree_ordering` — hubs first (the classic heuristic for
  power-law graphs: hot rows become contiguous).
* :func:`rcm_ordering` — Reverse Cuthill–McKee: BFS from a peripheral
  low-degree node, neighbours visited in degree order, then reversed —
  the standard bandwidth-minimising ordering.
* :func:`random_ordering` — the control.

:func:`bandwidth` and :func:`average_index_distance` quantify locality
deterministically (they do not depend on a machine's cache), and
:func:`permute_graph` applies an ordering to a whole featured graph.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import GraphError
from repro.graph.core import Graph
from repro.utils.rng import as_rng


def permute_graph(graph: Graph, order: np.ndarray) -> Graph:
    """Relabel nodes so that old node ``order[i]`` becomes new node ``i``."""
    order = np.asarray(order, dtype=np.int64)
    if sorted(order.tolist()) != list(range(graph.n_nodes)):
        raise GraphError("order must be a permutation of all nodes")
    adj = graph.adjacency()[order][:, order].tocsr()
    return Graph.from_scipy(
        adj,
        x=None if graph.x is None else graph.x[order],
        y=None if graph.y is None else graph.y[order],
        directed=graph.directed,
    )


def random_ordering(graph: Graph, seed=None) -> np.ndarray:
    return as_rng(seed).permutation(graph.n_nodes)


def degree_ordering(graph: Graph) -> np.ndarray:
    """Nodes by decreasing degree (ties by id)."""
    return np.lexsort((np.arange(graph.n_nodes), -graph.degrees()))


def rcm_ordering(graph: Graph) -> np.ndarray:
    """Reverse Cuthill–McKee over each connected component."""
    n = graph.n_nodes
    degrees = graph.degrees()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Process components starting from their minimum-degree node.
    by_degree = np.lexsort((np.arange(n), degrees))
    for start in by_degree:
        start = int(start)
        if visited[start]:
            continue
        visited[start] = True
        queue: deque[int] = deque([start])
        while queue:
            u = queue.popleft()
            order.append(u)
            neigh = [int(v) for v in graph.neighbors(u) if not visited[v]]
            neigh.sort(key=lambda v: (degrees[v], v))
            for v in neigh:
                visited[v] = True
                queue.append(v)
    return np.asarray(order[::-1], dtype=np.int64)


def bandwidth(graph: Graph) -> int:
    """Max |i - j| over edges — the quantity RCM minimises."""
    if graph.n_edges == 0:
        return 0
    edges = graph.edge_array()
    return int(np.abs(edges[:, 0] - edges[:, 1]).max())


def average_index_distance(graph: Graph) -> float:
    """Mean |i - j| over edges — a smoother locality score than bandwidth."""
    if graph.n_edges == 0:
        return 0.0
    edges = graph.edge_array()
    return float(np.abs(edges[:, 0] - edges[:, 1]).mean())
