"""The immutable CSR :class:`Graph`, the storage substrate of the library.

Design notes
------------
* Adjacency is stored as CSR (``indptr``/``indices``/``weights``) of
  *directed arcs*. An undirected graph stores each edge in both directions
  and reports ``directed=False``; :attr:`Graph.n_edges` counts stored arcs,
  while :attr:`Graph.n_undirected_edges` counts unordered pairs.
* Node features (``x``) and labels (``y``) ride along as optional NumPy
  arrays so that datasets, samplers and trainers can pass a single object.
* Instances are immutable: the underlying arrays are flagged non-writeable
  at construction, and every "editing" operation returns a fresh graph.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError, ShapeError


class Graph:
    """An immutable graph in CSR form with optional features and labels.

    Parameters
    ----------
    indptr, indices:
        Standard CSR row pointers and column indices of the (directed)
        adjacency structure.
    weights:
        Optional per-arc weights; defaults to all-ones.
    n_nodes:
        Number of nodes; inferred as ``len(indptr) - 1``.
    x:
        Optional ``(n_nodes, d)`` float feature matrix.
    y:
        Optional ``(n_nodes,)`` integer label vector.
    directed:
        Whether the arc set should be interpreted as directed. Undirected
        graphs must store both arc directions; this is validated.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "x",
        "y",
        "directed",
        "_n_nodes",
        "_csr",
        "_fingerprint",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        *,
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
        directed: bool = False,
        validate: bool = True,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ShapeError("indptr and indices must be one-dimensional")
        if len(indptr) == 0:
            raise GraphError("indptr must have at least one entry")
        n_nodes = len(indptr) - 1
        if weights is None:
            weights = np.ones(len(indices), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise ShapeError(
                    f"weights shape {weights.shape} != indices shape {indices.shape}"
                )
        if validate:
            self._validate_structure(indptr, indices, n_nodes)
        if x is not None:
            x = np.asarray(x, dtype=np.float64)
            if x.ndim != 2 or x.shape[0] != n_nodes:
                raise ShapeError(
                    f"x must be (n_nodes, d) = ({n_nodes}, d), got {x.shape}"
                )
        if y is not None:
            y = np.asarray(y)
            if y.shape != (n_nodes,):
                raise ShapeError(f"y must be ({n_nodes},), got {y.shape}")
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.x = x
        self.y = y
        self.directed = bool(directed)
        self._n_nodes = n_nodes
        self._csr: sp.csr_matrix | None = None
        self._fingerprint: str | None = None
        for arr in (self.indptr, self.indices, self.weights, self.x, self.y):
            if arr is not None:
                arr.setflags(write=False)
        if validate and not directed:
            self._validate_symmetry()

    @staticmethod
    def _validate_structure(indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("indices contain node ids outside [0, n_nodes)")

    def _validate_symmetry(self) -> None:
        adj = self.adjacency()
        diff = adj - adj.T
        if diff.nnz and np.max(np.abs(diff.data)) > 1e-9:
            raise GraphError(
                "undirected graph must store symmetric arcs; "
                "pass directed=True or symmetrise the edge list"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        n_nodes: int,
        weights: np.ndarray | None = None,
        *,
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
        directed: bool = False,
    ) -> "Graph":
        """Build a graph from an edge list.

        For undirected graphs each edge ``(u, v)`` is stored in both
        directions; duplicate arcs are merged by summing weights.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if weights is None:
            weights = np.ones(len(edges), dtype=np.float64)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (len(edges),):
                raise ShapeError("weights must have one entry per edge")
        rows, cols = edges[:, 0], edges[:, 1]
        if not directed:
            loop = rows == cols
            rows, cols = (
                np.concatenate([rows, cols[~loop]]),
                np.concatenate([cols, rows[~loop]]),
            )
            weights = np.concatenate([weights, weights[~loop]])
        mat = sp.csr_matrix(
            (weights, (rows, cols)), shape=(n_nodes, n_nodes), dtype=np.float64
        )
        mat.sum_duplicates()
        return cls(
            mat.indptr.astype(np.int64),
            mat.indices.astype(np.int64),
            mat.data,
            x=x,
            y=y,
            directed=directed,
        )

    @classmethod
    def from_scipy(
        cls,
        matrix: sp.spmatrix,
        *,
        x: np.ndarray | None = None,
        y: np.ndarray | None = None,
        directed: bool = False,
    ) -> "Graph":
        """Build a graph from any SciPy sparse adjacency matrix."""
        mat = sp.csr_matrix(matrix, dtype=np.float64)
        if mat.shape[0] != mat.shape[1]:
            raise GraphError(f"adjacency must be square, got {mat.shape}")
        mat.sum_duplicates()
        return cls(
            mat.indptr.astype(np.int64),
            mat.indices.astype(np.int64),
            mat.data,
            x=x,
            y=y,
            directed=directed,
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of stored directed arcs."""
        return len(self.indices)

    @property
    def n_undirected_edges(self) -> int:
        """Number of unordered edges (self-loops count once)."""
        if self.directed:
            raise GraphError("n_undirected_edges is undefined for directed graphs")
        loops = int(np.sum(self.edge_sources() == self.indices))
        return (self.n_edges - loops) // 2 + loops

    @property
    def n_features(self) -> int:
        if self.x is None:
            raise GraphError("graph has no feature matrix")
        return self.x.shape[1]

    @property
    def n_classes(self) -> int:
        if self.y is None:
            raise GraphError("graph has no labels")
        return int(self.y.max()) + 1

    def degrees(self, weighted: bool = False) -> np.ndarray:
        """Out-degree of each node (arc count, or summed weight)."""
        if weighted:
            return np.bincount(
                self.edge_sources(), weights=self.weights, minlength=self.n_nodes
            )
        return np.diff(self.indptr).astype(np.float64)

    def neighbors(self, node: int) -> np.ndarray:
        """Out-neighbour ids of ``node`` (a read-only view)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def neighbor_weights(self, node: int) -> np.ndarray:
        return self.weights[self.indptr[node] : self.indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        return bool(np.isin(v, self.neighbors(u)).item())

    def edge_sources(self) -> np.ndarray:
        """Source node of every stored arc, aligned with ``indices``."""
        return np.repeat(np.arange(self.n_nodes), np.diff(self.indptr))

    def edge_array(self) -> np.ndarray:
        """All stored arcs as an ``(n_edges, 2)`` array of (src, dst)."""
        return np.column_stack([self.edge_sources(), self.indices])

    def iter_edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield stored arcs as ``(src, dst, weight)`` tuples."""
        src = self.edge_sources()
        for s, d, w in zip(src, self.indices, self.weights):
            yield int(s), int(d), float(w)

    # ------------------------------------------------------------------ #
    # Matrix views
    # ------------------------------------------------------------------ #

    def adjacency(self) -> sp.csr_matrix:
        """The (weighted) adjacency matrix as a SciPy CSR matrix.

        The matrix is built once and cached on the instance (the graph is
        immutable, and the CSR shares the graph's read-only arrays).
        Callers that need to mutate the result must ``copy()`` it first.
        """
        if self._csr is None:
            self._csr = sp.csr_matrix(
                (self.weights, self.indices, self.indptr),
                shape=(self.n_nodes, self.n_nodes),
            )
        return self._csr

    @property
    def fingerprint(self) -> str:
        """Lazy content hash of the CSR arrays (see :mod:`repro.perf`).

        Computed once per instance; identical graphs (same ``indptr`` /
        ``indices`` / ``weights`` / ``directed``) share the same digest
        even across separately constructed instances, which is what lets
        :class:`repro.perf.OperatorCache` reuse operators between them.
        """
        if self._fingerprint is None:
            from repro.perf.fingerprint import graph_fingerprint

            self._fingerprint = graph_fingerprint(self)
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def with_data(
        self, x: np.ndarray | None = None, y: np.ndarray | None = None
    ) -> "Graph":
        """Return a copy of this graph with features/labels attached."""
        return Graph(
            self.indptr,
            self.indices,
            self.weights,
            x=self.x if x is None else x,
            y=self.y if y is None else y,
            directed=self.directed,
            validate=False,
        )

    def add_self_loops(self, weight: float = 1.0) -> "Graph":
        """Return a graph with a self-loop (of ``weight``) on every node.

        Existing self-loops are replaced rather than accumulated, matching
        the GCN renormalisation trick.
        """
        adj = self.adjacency()
        correction = np.full(self.n_nodes, float(weight)) - adj.diagonal()
        out = (adj + sp.diags(correction)).tocsr()
        out.eliminate_zeros()
        return Graph.from_scipy(out, x=self.x, y=self.y, directed=self.directed)

    def remove_self_loops(self) -> "Graph":
        adj = self.adjacency()
        diag = adj.diagonal()
        out = (adj - sp.diags(diag)).tocsr() if diag.any() else adj.copy()
        out.eliminate_zeros()
        return Graph.from_scipy(out, x=self.x, y=self.y, directed=self.directed)

    def to_undirected(self) -> "Graph":
        """Symmetrise a directed graph by taking max(w(u,v), w(v,u))."""
        if not self.directed:
            return self
        adj = self.adjacency()
        sym = adj.maximum(adj.T)
        return Graph.from_scipy(sym, x=self.x, y=self.y, directed=False)

    def subgraph(self, nodes: np.ndarray) -> "Graph":
        """Induce the subgraph on ``nodes`` (relabelled to 0..len-1).

        Features and labels are sliced along. Node ``i`` of the result
        corresponds to ``nodes[i]`` of this graph.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= self.n_nodes):
            raise GraphError("subgraph nodes outside [0, n_nodes)")
        if len(np.unique(nodes)) != len(nodes):
            raise GraphError("subgraph nodes must be unique")
        adj = self.adjacency()[nodes][:, nodes].tocsr()
        return Graph.from_scipy(
            adj,
            x=None if self.x is None else self.x[nodes],
            y=None if self.y is None else self.y[nodes],
            directed=self.directed,
        )

    def reweighted(self, weights: np.ndarray) -> "Graph":
        """Return a copy with arc weights replaced (same sparsity pattern)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self.indices.shape:
            raise ShapeError("weights must align with the stored arcs")
        return Graph(
            self.indptr,
            self.indices,
            weights,
            x=self.x,
            y=self.y,
            directed=self.directed,
            validate=False,
        )

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        extras = []
        if self.x is not None:
            extras.append(f"d={self.x.shape[1]}")
        if self.y is not None:
            extras.append(f"classes={self.n_classes}")
        suffix = (", " + ", ".join(extras)) if extras else ""
        return f"Graph(n={self.n_nodes}, arcs={self.n_edges}, {kind}{suffix})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.weights, other.weights)
        )

    def __hash__(self) -> int:
        return hash((self.n_nodes, self.n_edges, self.directed))
