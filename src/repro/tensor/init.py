"""Weight initialisers (Glorot/He families) used by the nn layers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng


def glorot_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    rng = as_rng(rng)
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def glorot_normal(shape: tuple[int, ...], rng=None) -> np.ndarray:
    rng = as_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng=None) -> np.ndarray:
    """He/Kaiming uniform, suited to ReLU networks."""
    rng = as_rng(rng)
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...], rng=None) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...], rng=None) -> np.ndarray:
    return np.ones(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
