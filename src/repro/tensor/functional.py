"""Differentiable functions over :class:`~repro.tensor.autograd.Tensor`.

Nonlinearities, softmax/cross-entropy, dropout and shape utilities — the
vocabulary needed by the GNN model zoo. Every function builds the backward
closure explicitly; none mutate their inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.autograd import Tensor, spmm  # re-exported for convenience
from repro.utils.rng import as_rng

__all__ = [
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "exp",
    "log",
    "abs_",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "dropout",
    "layer_norm",
    "concat",
    "stack_rows",
    "spmm",
]


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    return Tensor._make(
        x.data * mask, (x,), lambda grad: x._accumulate(grad * mask)
    )


def leaky_relu(x: Tensor, slope: float = 0.01) -> Tensor:
    scale = np.where(x.data > 0, 1.0, slope)
    return Tensor._make(
        x.data * scale, (x,), lambda grad: x._accumulate(grad * scale)
    )


def tanh(x: Tensor) -> Tensor:
    out = np.tanh(x.data)
    return Tensor._make(
        out, (x,), lambda grad: x._accumulate(grad * (1.0 - out**2))
    )


def sigmoid(x: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-np.clip(x.data, -60.0, 60.0)))
    return Tensor._make(
        out, (x,), lambda grad: x._accumulate(grad * out * (1.0 - out))
    )


def exp(x: Tensor) -> Tensor:
    out = np.exp(x.data)
    return Tensor._make(out, (x,), lambda grad: x._accumulate(grad * out))


def log(x: Tensor) -> Tensor:
    return Tensor._make(
        np.log(x.data), (x,), lambda grad: x._accumulate(grad / x.data)
    )


def abs_(x: Tensor) -> Tensor:
    sign = np.sign(x.data)
    return Tensor._make(
        np.abs(x.data), (x,), lambda grad: x._accumulate(grad * sign)
    )


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out).sum(axis=axis, keepdims=True)
        x._accumulate(out * (grad - inner))

    return Tensor._make(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    soft = np.exp(out)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy of row-wise ``logits`` against integer ``labels``.

    Fused log-softmax + NLL for numerical stability; returns a scalar tensor.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"expected logits (n, c) and labels (n,), got "
            f"{logits.shape} and {labels.shape}"
        )
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logp = shifted - logsumexp
    loss = -logp[np.arange(n), labels].mean()
    soft = np.exp(logp)

    def backward(grad: np.ndarray) -> None:
        g = soft.copy()
        g[np.arange(n), labels] -= 1.0
        logits._accumulate(grad * g / n)

    return Tensor._make(np.asarray(loss), (logits,), backward)


def dropout(x: Tensor, p: float, training: bool = True, seed=None) -> Tensor:
    """Inverted dropout: zero entries w.p. ``p`` and rescale by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = as_rng(seed)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return Tensor._make(
        x.data * mask, (x,), lambda grad: x._accumulate(grad * mask)
    )


def layer_norm(x: Tensor, eps: float = 1e-5) -> Tensor:
    """Per-row layer normalisation (no learnable affine).

    Composed from primitive differentiable ops, so the backward pass needs
    no bespoke derivation.
    """
    mu = x.mean(axis=-1, keepdims=True)
    centred = x - mu
    var = (centred * centred).mean(axis=-1, keepdims=True)
    return centred * ((var + eps) ** -0.5)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate along ``axis`` with gradient slicing back to each input."""
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    datas = [t.data for t in tensors]
    out = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.concatenate([[0], np.cumsum(sizes)])

    def backward(grad: np.ndarray) -> None:
        moved = np.moveaxis(grad, axis, 0)
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                t._accumulate(np.moveaxis(moved[lo:hi], 0, axis))

    return Tensor._make(out, tuple(tensors), backward)


def stack_rows(tensors: list[Tensor]) -> Tensor:
    """Stack 1-D/2-D tensors as the leading axis of a new array."""
    if not tensors:
        raise ShapeError("stack_rows requires at least one tensor")
    out = np.stack([t.data for t in tensors], axis=0)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(grad[i])

    return Tensor._make(out, tuple(tensors), backward)
