"""Reverse-mode automatic differentiation over NumPy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records, for each produced value,
the parent tensors and a closure that propagates the output gradient to
them. Calling :meth:`Tensor.backward` performs a topological sort of the
recorded graph and accumulates gradients leaf-ward.

Only the operations the library needs are implemented, but each is complete:
broadcasting is handled in both directions, and sparse matrices (SciPy CSR)
participate as constants in :func:`spmm` — the way graph propagation enters
a GNN's compute graph.
"""

from __future__ import annotations

import contextlib
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (a copy, detached from the graph)."""
        return self.data.copy()

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar tensors; for non-scalars it must be
        provided with a matching shape.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if grad is None:
            if self.data.size != 1:
                raise ShapeError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ShapeError(
                    f"grad shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for p in parents:
                    if id(p) not in seen:
                        seen.add(id(p))
                        stack.append((p, iter(p._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return Tensor._make(out_data, (self, other), backward)

    @property
    def T(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(self.data.T, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        orig = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(orig))

        return Tensor._make(self.data.reshape(*shape), (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #

    def gather_rows(self, index: np.ndarray) -> "Tensor":
        """Select rows ``self[index]``; backward scatter-adds into place."""
        index = np.asarray(index, dtype=np.int64)
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse-constant × dense-tensor product ``matrix @ dense``.

    The sparse ``matrix`` (e.g. a normalised adjacency) is a constant of the
    computation; gradients flow only into ``dense`` as ``matrix.T @ grad``.
    This is the core primitive of message-passing GNN layers.
    """
    if not sp.issparse(matrix):
        raise TypeError("spmm expects a SciPy sparse matrix")
    mat = matrix.tocsr()
    out_data = mat @ dense.data
    mat_t = mat.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        dense._accumulate(mat_t @ grad)

    return Tensor._make(out_data, (dense,), backward)
