"""First-order optimisers: SGD (with momentum), Adam, AdamW.

Each optimiser holds references to the parameters it updates and per-
parameter state keyed by identity; ``step()`` consumes the ``.grad`` fields
populated by backward and ``zero_grad()`` clears them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor.nn import Parameter
from repro.utils.validation import check_positive


class Optimizer:
    """Common bookkeeping for all optimisers."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ConfigError("optimizer received no parameters")
        self.lr = check_positive("lr", lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Checkpointing: per-parameter state is keyed by object identity at
    # runtime, which does not survive a process restart — state dicts
    # translate to/from positional keys over ``self.params`` order.
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Serializable optimizer state, keyed by parameter position."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto the current params."""
        if state:
            raise ConfigError(
                f"{type(self).__name__} carries no state but got keys "
                f"{sorted(state)}"
            )

    def _slot_dict(self, slots: dict[int, np.ndarray]) -> dict:
        return {
            str(i): slots[id(p)].copy()
            for i, p in enumerate(self.params)
            if id(p) in slots
        }

    def _load_slot_dict(self, state: dict) -> dict[int, np.ndarray]:
        slots: dict[int, np.ndarray] = {}
        for key, value in state.items():
            index = int(key)
            if not 0 <= index < len(self.params):
                raise ConfigError(
                    f"optimizer state names parameter {index} but only "
                    f"{len(self.params)} parameters are registered"
                )
            slots[id(self.params[index])] = np.asarray(value).copy()
        return slots


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = check_positive("weight_decay", weight_decay, strict=False)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                vel = grad if vel is None else self.momentum * vel + grad
                self._velocity[id(p)] = vel
                grad = vel
            p.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {"velocity": self._slot_dict(self._velocity)}

    def load_state_dict(self, state: dict) -> None:
        self._velocity = self._load_slot_dict(state.get("velocity", {}))


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with L2 regularisation folded into the grad."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ConfigError(f"betas must be in [0, 1), got {betas}")
        self.betas = (b1, b2)
        self.eps = check_positive("eps", eps)
        self.weight_decay = check_positive("weight_decay", weight_decay, strict=False)
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def _decayed_grad(self, p: Parameter) -> np.ndarray:
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        return grad

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        for p in self.params:
            if p.grad is None:
                continue
            grad = self._decayed_grad(p)
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad**2
            self._m[id(p)], self._v[id(p)] = m, v
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": self._slot_dict(self._m),
            "v": self._slot_dict(self._v),
        }

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state.get("t", 0))
        self._m = self._load_slot_dict(state.get("m", {}))
        self._v = self._load_slot_dict(state.get("v", {}))


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _decayed_grad(self, p: Parameter) -> np.ndarray:
        return p.grad

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        super().step()


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm.
    """
    check_positive("max_norm", max_norm)
    total = 0.0
    grads = [p.grad for p in params if p.grad is not None]
    for g in grads:
        total += float(np.sum(g**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
