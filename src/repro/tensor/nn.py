"""Neural-network modules: parameters, Linear/Dropout/MLP, composition.

A :class:`Module` owns :class:`Parameter` tensors (discovered recursively
through attributes, lists, and sub-modules), exposes ``train()``/``eval()``
mode switching, and supports state-dict save/load — enough machinery to
express every model in the zoo without a framework dependency.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.tensor import functional as F
from repro.tensor import init as initmod
from repro.tensor.autograd import Tensor
from repro.utils.rng import as_rng


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        self.data.setflags(write=True)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances (or
    lists of them) as attributes; :meth:`parameters` and
    :meth:`named_parameters` discover them recursively.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Parameter discovery
    # ------------------------------------------------------------------ #

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # Modes and state
    # ------------------------------------------------------------------ #

    def _submodules(self) -> Iterator["Module"]:
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                yield from (v for v in value if isinstance(v, Module))

    def train(self) -> "Module":
        self.training = True
        for m in self._submodules():
            m.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for m in self._submodules():
            m.eval()
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise ConfigError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            if params[name].data.shape != value.shape:
                raise ConfigError(
                    f"shape mismatch for {name}: "
                    f"{params[name].data.shape} vs {value.shape}"
                )
            params[name].data[...] = value

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine layer ``x @ W + b`` with Glorot-uniform initialisation."""

    def __init__(
        self, in_features: int, out_features: int, bias: bool = True, seed=None
    ) -> None:
        super().__init__()
        rng = as_rng(seed)
        self.weight = Parameter(initmod.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode. Deterministic under a seed."""

    def __init__(self, p: float = 0.5, seed=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, seed=self._rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations and dropout.

    The feature-transformation half of every decoupled GNN (§3.1.2): in
    SGC/APPNP-precompute/GAMLP-style models the propagation output is fed
    through exactly this network.
    """

    def __init__(
        self,
        in_features: int,
        hidden: int,
        out_features: int,
        n_layers: int = 2,
        dropout: float = 0.0,
        seed=None,
    ) -> None:
        super().__init__()
        if n_layers < 1:
            raise ConfigError(f"n_layers must be >= 1, got {n_layers}")
        rng = as_rng(seed)
        dims = (
            [in_features]
            + [hidden] * (n_layers - 1)
            + [out_features]
        )
        self.linears = [
            Linear(dims[i], dims[i + 1], seed=rng) for i in range(n_layers)
        ]
        self.dropout = Dropout(dropout, seed=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.linears):
            if self.dropout is not None:
                x = self.dropout(x)
            x = layer(x)
            if i < len(self.linears) - 1:
                x = F.relu(x)
        return x
