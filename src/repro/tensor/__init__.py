"""A minimal deep-learning substrate: NumPy reverse-mode autograd + layers.

The tutorial's scalability arguments concern graph-side computation, not the
neural backend, so instead of depending on PyTorch we implement the backend
from scratch: a :class:`~repro.tensor.autograd.Tensor` with reverse-mode
automatic differentiation, neural-network modules, optimisers, and a
numerical gradient checker. Sparse matrices (SciPy CSR) participate as
constants in ``spmm``, which is exactly how graph propagation enters GNNs.
"""

from repro.tensor.autograd import Tensor, no_grad
from repro.tensor import functional
from repro.tensor import init
from repro.tensor.nn import (
    MLP,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Tanh,
)
from repro.tensor.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.tensor.gradcheck import check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "init",
    "Module",
    "Parameter",
    "Linear",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sequential",
    "MLP",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "check_gradients",
]
