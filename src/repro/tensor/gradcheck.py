"""Numerical gradient checking for the autograd engine.

Central finite differences against analytic gradients — used both by the
test suite and available to users adding custom ops.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor.autograd import Tensor


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: list[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic gradients of a scalar-valued ``fn`` numerically.

    Parameters
    ----------
    fn:
        Callable mapping the input tensors to a scalar :class:`Tensor`.
    inputs:
        Tensors w.r.t. which gradients are checked; all must require grad.

    Returns ``True`` when all gradients match; raises ``AssertionError`` with
    the worst offender otherwise.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued fn")
    out.backward()
    for idx, t in enumerate(inputs):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = np.zeros_like(t.data)
        flat = t.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = fn(*inputs).item()
            flat[i] = orig - eps
            minus = fn(*inputs).item()
            flat[i] = orig
            num_flat[i] = (plus - minus) / (2 * eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
