"""Exception hierarchy for the :mod:`repro` library.

Every error deliberately raised by library code derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or an operation unsupported by a graph."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class NotFittedError(ReproError):
    """A model or index was queried before being fitted/built."""


class ConfigError(ReproError):
    """A hyper-parameter or option is outside its valid range."""


class TransientError(ReproError):
    """A failure expected to clear on retry (a network blip, a racing
    update, an injected chaos fault).

    The marker consumed by :func:`repro.resilience.classify_error`: a
    raised exception is retried only when it derives from this class or
    carries a truthy ``transient`` attribute; everything else is treated
    as permanent and fails fast."""

    transient = True


class FaultError(ReproError):
    """A deliberately injected *permanent* fault
    (:class:`repro.resilience.FaultInjector`); never retried."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, found, or verified — including
    a stored-checksum mismatch on load (corrupt or truncated file)."""


class DivergenceError(ReproError):
    """Training produced a non-finite (NaN/inf) loss; the message names
    the epoch so the run can be resumed from an earlier checkpoint."""


class ServingError(ReproError):
    """An online-serving request could not be satisfied (unknown model,
    graph/model mismatch, or an update applied to a non-dynamic model)."""


class LoadSheddingError(ServingError):
    """A request was rejected by admission control (the queue is full)."""


class CircuitOpenError(ServingError):
    """A request was rejected because the model's circuit breaker is open
    (recent batch failure rate crossed the threshold) and no stale
    fallback row was available. Clears once the cooldown elapses and a
    half-open probe succeeds, so it is marked ``transient``."""

    transient = True


class ServingTimeoutError(ServingError):
    """A request's per-call deadline elapsed before a response arrived.

    Raised by :meth:`repro.serving.runtime.ServingRuntime.predict` (and by
    resolving an async future past its timeout); the request may still
    complete in the background — the timeout bounds the caller's wait,
    not the work."""


class DistributedError(ReproError):
    """A process-parallel training run failed at the cluster level: a
    worker could not be launched or died before producing any result,
    the coordinator's wall-clock deadline elapsed, or every worker was
    lost mid-run (:mod:`repro.distributed`). Shared-memory segments are
    unlinked before this is raised."""
