"""Deterministic fault injection: seeded chaos for every layer.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries —
*where* (a named injection site), *what* (raise a transient or permanent
error, delay the caller, corrupt an array, or drop a result), and *how
often* (a per-call probability, an optional warm-up offset, an optional
fire budget). A :class:`FaultInjector` executes the plan from a seed, and
the schedule is a pure function of ``(seed, spec index, site, call
index)`` — the *n*-th call at a site receives the same decision no matter
how threads interleave, so chaos tests are bit-reproducible.

Injection sites threaded through the library (one ``FAULTS.active``
attribute check on the hot path, everything else behind it):

======================  ====================================================
site                    instrumented code
======================  ====================================================
``storage.get``         :meth:`repro.storage.FeatureStore.get`
``propagation.hop``     :func:`repro.perf.chunked_spmm` /
                        :func:`repro.perf.rows_spmm` (every hop application)
``serving.batch``       :meth:`repro.serving.ServingEngine.run_batch`
``training.worker_step``  per-worker steps in
                        :func:`repro.training.simulate_distributed_training`
======================  ====================================================

Fault kinds and their site semantics:

* ``"transient"`` — raise :class:`repro.errors.TransientError` (retried
  by :class:`repro.resilience.RetryPolicy`).
* ``"permanent"`` — raise :class:`repro.errors.FaultError` (fails fast).
* ``"delay"`` — sleep ``delay_s`` on the caller (straggler model).
* ``"corrupt"`` — the site passes its result array through
  :meth:`FaultInjector.corrupt` (seeded NaN poisoning); non-array
  results pass through unchanged.
* ``"drop"`` — the result is discarded: a store read becomes a miss, a
  batch or worker step becomes a transient failure.

Activate with the :func:`inject` context manager (or
:func:`install_injector` / :func:`clear_injector` for manual control)::

    plan = FaultPlan([
        FaultSpec("storage.get", "transient", rate=0.05),
        FaultSpec("serving.batch", "delay", rate=0.1, delay_s=0.005),
    ])
    with inject(plan, seed=7) as injector:
        ...  # chaos
    injector.snapshot()  # what actually fired
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro import obs
from repro.errors import ConfigError, FaultError, TransientError
from repro.utils.validation import (
    check_int_range,
    check_positive,
    check_probability,
)

FAULT_KINDS = ("transient", "permanent", "delay", "corrupt", "drop")

KNOWN_SITES = (
    "storage.get",
    "propagation.hop",
    "serving.batch",
    "training.worker_step",
)

_LOG = obs.get_logger("repro.resilience.faults")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, what, and how often.

    Attributes
    ----------
    site:
        Injection-site name (see :data:`KNOWN_SITES`); any string is
        accepted so applications can register their own sites.
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Per-call fire probability in ``[0, 1]``.
    after:
        Skip the first ``after`` calls at the site (warm-up grace).
    max_fires:
        Stop firing after this many hits (``None`` = unbounded). The
        budget is shared state, so schedules using it are deterministic
        only under a single thread.
    delay_s:
        Sleep duration for ``kind="delay"``.
    """

    site: str
    kind: str
    rate: float = 1.0
    after: int = 0
    max_fires: int | None = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        check_probability("rate", self.rate)
        if self.after < 0:
            raise ConfigError(f"after must be >= 0, got {self.after}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.kind == "delay":
            check_positive("delay_s", self.delay_s)


class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries.

    Order matters: the first spec that fires on a call decides the
    action (raise kinds abort the call immediately).
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs = list(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigError(
                    f"FaultPlan takes FaultSpec entries, got {type(spec).__name__}"
                )

    def add(
        self, site: str, kind: str, rate: float = 1.0, **kwargs
    ) -> "FaultPlan":
        """Append a spec; returns ``self`` for chaining."""
        self.specs.append(FaultSpec(site, kind, rate=rate, **kwargs))
        return self

    def sites(self) -> list[str]:
        return sorted({spec.site for spec in self.specs})

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.specs!r})"


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically from a seed.

    The fire decision for spec ``i`` at the ``n``-th call to ``site`` is
    drawn from ``default_rng([seed, i, crc32(site), n])`` — stateless, so
    it does not depend on thread interleaving or on calls at other
    sites. Call counters and fire budgets are kept under a lock.

    ``sleep`` is injectable so delay faults are testable without wall
    time.
    """

    def __init__(
        self,
        plan: FaultPlan | Iterable[FaultSpec],
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        corrupt_fraction: float = 0.05,
    ) -> None:
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        check_probability("corrupt_fraction", corrupt_fraction)
        self.plan = plan
        self.seed = int(seed)
        self.corrupt_fraction = corrupt_fraction
        self._sleep = sleep
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._fires: list[int] = [0] * len(plan)
        self._by_kind: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self.faults_injected = 0

    # ------------------------------------------------------------------ #

    def _decide(self, site: str) -> tuple[int, FaultSpec] | None:
        """Pick the firing spec for this call, or ``None``. Holds the lock
        only for the counter bump and budget check — the probability draw
        itself is stateless."""
        with self._lock:
            n = self._calls.get(site, 0)
            self._calls[site] = n + 1
            candidates = [
                (i, spec) for i, spec in enumerate(self.plan)
                if spec.site == site
                and n >= spec.after
                and (spec.max_fires is None or self._fires[i] < spec.max_fires)
            ]
        site_tag = zlib.crc32(site.encode("utf-8"))
        for i, spec in candidates:
            if spec.rate >= 1.0:
                fired = True
            else:
                draw = np.random.default_rng(
                    [self.seed, i, site_tag, n]
                ).random()
                fired = draw < spec.rate
            if fired:
                with self._lock:
                    self._fires[i] += 1
                    self._by_kind[spec.kind] += 1
                    self.faults_injected += 1
                return i, spec
        return None

    def fire(self, site: str) -> str | None:
        """Consult the schedule for one call at ``site``.

        Raises for ``transient``/``permanent`` faults, sleeps for
        ``delay`` faults, and returns the action name (``"delay"``,
        ``"corrupt"``, ``"drop"``) or ``None`` so the site can apply
        result-shaped faults itself.
        """
        hit = self._decide(site)
        if hit is None:
            return None
        i, spec = hit
        if obs.OBS.enabled:
            obs.OBS.registry.counter("resilience.faults_injected").inc(
                site=site, kind=spec.kind
            )
        _LOG.debug("fault %s fired at %s (spec %d)", spec.kind, site, i)
        if spec.kind == "transient":
            raise TransientError(f"injected transient fault at {site}")
        if spec.kind == "permanent":
            raise FaultError(f"injected permanent fault at {site}")
        if spec.kind == "delay":
            self._sleep(spec.delay_s)
        return spec.kind

    def corrupt(self, value):
        """Poison a seeded fraction of an array's entries with NaN.

        Returns a corrupted *copy*; non-float arrays and non-array
        values pass through untouched (corruption must be detectable,
        and NaN is the detector every consumer already has).
        """
        if not isinstance(value, np.ndarray) or value.size == 0:
            return value
        if not np.issubdtype(value.dtype, np.floating):
            return value
        with self._lock:
            n_corrupt = self.faults_injected  # varies the victim set per fire
        rng = np.random.default_rng([self.seed, 0x3FA11, n_corrupt])
        out = np.array(value, copy=True)
        flat = out.reshape(-1)
        k = max(1, int(flat.size * self.corrupt_fraction))
        flat[rng.choice(flat.size, size=k, replace=False)] = np.nan
        return out

    # ------------------------------------------------------------------ #

    # ------------------------------------------------------------------ #
    # Pickling: ship the schedule, rebuild the machinery locally.
    # ------------------------------------------------------------------ #

    def __getstate__(self) -> dict:
        """Picklable schedule: ``(plan, seed, corrupt_fraction)`` only.

        The fire schedule is a pure function of those three values, so a
        worker process that unpickles an injector replays the *identical*
        per-call decisions the parent would make — which is what lets a
        chaos plan be built once and delivered to every
        :mod:`repro.distributed` worker. Runtime state (lock, call
        counters, fire budgets, an injected ``sleep``) is deliberately
        dropped: the rebuilt injector starts at call index 0 with
        ``time.sleep``.
        """
        return {
            "plan": self.plan,
            "seed": self.seed,
            "corrupt_fraction": self.corrupt_fraction,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["plan"],
            seed=state["seed"],
            corrupt_fraction=state["corrupt_fraction"],
        )

    def call_counts(self) -> dict[str, int]:
        """Per-site call counters — the injector's schedule *position*.

        Together with ``(plan, seed)`` this fully determines every
        future decision; it is what a respawned
        :mod:`repro.distributed` worker checkpoints so its rebuilt
        injector can :meth:`fast_forward` to the exact same point.
        """
        with self._lock:
            return dict(self._calls)

    def fast_forward(self, call_counts: dict[str, int]) -> None:
        """Replay the schedule to ``call_counts`` without side effects.

        Re-runs :meth:`_decide` for each recorded call, which restores
        the call indices, per-spec fire budgets, and the
        ``faults_injected`` counter (the seed of :meth:`corrupt`'s
        victim selection) to exactly what a continuously running
        injector would hold — but never raises, sleeps, or corrupts.
        Only meaningful on a freshly built injector (call index 0).
        """
        if self.calls() != 0:
            raise ConfigError(
                "fast_forward needs a fresh injector (no calls recorded)"
            )
        for site, count in call_counts.items():
            check_int_range("count", int(count), 0)
            for _ in range(int(count)):
                self._decide(site)

    def calls(self, site: str | None = None) -> int:
        """Instrumented calls observed (at one site, or in total)."""
        with self._lock:
            if site is not None:
                return self._calls.get(site, 0)
            return sum(self._calls.values())

    def snapshot(self) -> dict[str, float]:
        """Flat counter dict (:class:`repro.obs.StatsSource`)."""
        with self._lock:
            out = {
                "faults_injected": self.faults_injected,
                "calls": sum(self._calls.values()),
            }
            out.update({kind: self._by_kind[kind] for kind in FAULT_KINDS})
            return out

    def reset(self) -> None:
        """Zero the counters and call indices (restarts the schedule)."""
        with self._lock:
            self._calls.clear()
            self._fires = [0] * len(self.plan)
            self._by_kind = {kind: 0 for kind in FAULT_KINDS}
            self.faults_injected = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultInjector(specs={len(self.plan)}, seed={self.seed}, "
            f"injected={self.faults_injected})"
        )


class _FaultState:
    """Process-global injection switch; ``FAULTS`` is its only instance.

    Instrumented sites cache the module-level ``FAULTS`` reference and
    branch on ``FAULTS.active`` — one attribute load when chaos is off,
    which is the only cost production paths ever pay.

    Teardown contract: :func:`clear_injector` may run concurrently with
    instrumented calls (it drops ``active`` before ``injector``), so a
    site must load ``FAULTS.injector`` into a local **exactly once**
    and null-check it — ``inj = FAULTS.injector if FAULTS.active else
    None`` — never dereference ``FAULTS.injector`` twice. A site that
    observes ``None`` mid-teardown simply skips injection.
    """

    __slots__ = ("active", "injector")

    def __init__(self) -> None:
        self.active = False
        self.injector: FaultInjector | None = None


FAULTS = _FaultState()


def install_injector(injector: FaultInjector) -> None:
    """Activate ``injector`` at every instrumented site (process-wide)."""
    if not isinstance(injector, FaultInjector):
        raise ConfigError("install_injector expects a FaultInjector")
    if FAULTS.active:
        raise ConfigError(
            "a FaultInjector is already installed; clear_injector() first"
        )
    FAULTS.injector = injector
    FAULTS.active = True
    obs.register_source("resilience.faults", injector)
    _LOG.info(
        "fault injection active: %d spec(s) over sites %s (seed %d)",
        len(injector.plan), injector.plan.sites(), injector.seed,
    )


def clear_injector() -> FaultInjector | None:
    """Deactivate fault injection; returns the removed injector."""
    injector = FAULTS.injector
    FAULTS.active = False
    FAULTS.injector = None
    if injector is not None:
        obs.get_registry().unregister_source("resilience.faults")
        _LOG.info("fault injection cleared: %s", injector.snapshot())
    return injector


@contextmanager
def inject(
    plan: FaultPlan | Iterable[FaultSpec], seed: int = 0, **kwargs
) -> Iterator[FaultInjector]:
    """Scoped fault injection: install a fresh injector, always clear it."""
    injector = FaultInjector(plan, seed=seed, **kwargs)
    install_injector(injector)
    try:
        yield injector
    finally:
        clear_injector()
