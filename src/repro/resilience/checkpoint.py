"""Atomic, checksummed training checkpoints with resume support.

A checkpoint is one ``.npz`` file holding an arbitrarily nested state
dict: array leaves become npz entries, JSON-able leaves (ints, floats,
strings, bools, ``None``, lists, RNG bit-generator states) travel in a
JSON header entry. Three properties make the format survive being killed
mid-write and being read after corruption:

* **Atomic visibility** — the payload is written to a temp file in the
  target directory and ``os.replace``-d into place, so a reader never
  observes a half-written checkpoint under POSIX semantics.
* **Content checksum** — a SHA-256 over every entry's name, dtype,
  shape, and bytes is stored inside the file; :meth:`Checkpointer.load`
  recomputes it and raises :class:`repro.errors.CheckpointError` on any
  mismatch (bit rot, truncation, partial copy).
* **Bit-exact round trip** — arrays are stored losslessly, so a training
  run resumed from a checkpoint replays the identical float sequence
  (the property ``tests/test_resilience.py`` proves end to end).

The trainers (:mod:`repro.training.trainers`) and
:class:`repro.training.TrainingPipeline` snapshot model parameters,
optimizer state, early-stopping state, histories, and RNG state every N
epochs through this class; :func:`repro.training.distributed` uses it
for checkpoint-restart worker recovery.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.errors import CheckpointError, ConfigError
from repro.utils.validation import check_int_range

_LOG = obs.get_logger("repro.resilience.checkpoint")

_SEP = "/"
_META_KEY = "__checkpoint_meta__"
_CHECKSUM_KEY = "__checkpoint_sha256__"
_FORMAT_VERSION = 1


def _flatten(state: dict, prefix: str = "") -> tuple[dict, dict]:
    """Split a nested dict into ``(arrays, scalars)`` with ``/``-joined keys.

    Dict values recurse; :class:`numpy.ndarray` leaves go to ``arrays``;
    everything else must be JSON-serializable and goes to ``scalars``.
    """
    arrays: dict[str, np.ndarray] = {}
    scalars: dict[str, Any] = {}
    for key, value in state.items():
        key = str(key)
        if _SEP in key:
            raise ConfigError(
                f"checkpoint state keys must not contain {_SEP!r}: {key!r}"
            )
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            sub_arrays, sub_scalars = _flatten(value, prefix=f"{path}{_SEP}")
            arrays.update(sub_arrays)
            scalars.update(sub_scalars)
        elif isinstance(value, np.ndarray):
            arrays[path] = value
        elif isinstance(value, (np.integer, np.floating, np.bool_)):
            scalars[path] = value.item()
        else:
            scalars[path] = value
    return arrays, scalars


def _unflatten(arrays: dict, scalars: dict) -> dict:
    state: dict = {}
    for path, value in list(arrays.items()) + list(scalars.items()):
        node = state
        parts = path.split(_SEP)
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return state


def _checksum(arrays: dict[str, np.ndarray], meta_json: str) -> str:
    digest = hashlib.sha256()
    digest.update(meta_json.encode("utf-8"))
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(arr.dtype.str.encode("ascii"))
        digest.update(repr(arr.shape).encode("ascii"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


class Checkpointer:
    """Writes and restores checkpoints under one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    keep:
        Retain at most this many checkpoints — older steps are pruned
        after each successful save (``None`` keeps everything).
    prefix:
        File-name prefix, ``<prefix>-<step 8 digits>.npz``.
    namespace:
        Optional sub-directory under ``directory`` this writer owns
        (e.g. ``"rank3"``). Concurrent writers sharing one checkpoint
        root **must** use distinct namespaces: :meth:`save`'s keep-N
        pruning scans only the writer's own namespace, so one rank's
        pruning can never delete another rank's checkpoints. Use
        :meth:`scoped` to derive per-writer views of one root.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int | None = 3,
        prefix: str = "ckpt",
        namespace: str | None = None,
    ) -> None:
        if keep is not None:
            check_int_range("keep", keep, 1)
        self.root = Path(directory)
        if namespace is not None:
            namespace = str(namespace)
            if (
                not namespace
                or namespace != Path(namespace).name
            ):
                raise ConfigError(
                    "namespace must be a bare directory name "
                    f"(no separators), got {namespace!r}"
                )
        self.namespace = namespace
        self.directory = (
            self.root if namespace is None else self.root / namespace
        )
        self.keep = keep
        self.prefix = prefix
        self.saves = 0
        self.bytes_written = 0
        obs.register_source("resilience.checkpoint", self)

    def scoped(self, namespace: str) -> "Checkpointer":
        """A sibling writer under the same root, owning ``namespace``.

        The returned checkpointer shares ``keep``/``prefix`` but writes
        (and prunes) exclusively under ``<root>/<namespace>/`` — the
        per-rank isolation :mod:`repro.distributed` workers use so
        concurrent keep-N pruning on one shared directory can never
        cross ranks.
        """
        return Checkpointer(
            self.root, keep=self.keep, prefix=self.prefix, namespace=namespace
        )

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{int(step):08d}.npz"

    def save(self, step: int, state: dict) -> Path:
        """Persist ``state`` for ``step`` atomically; returns the path."""
        check_int_range("step", step, 0)
        arrays, scalars = _flatten(state)
        meta = {
            "version": _FORMAT_VERSION,
            "step": int(step),
            "scalars": scalars,
        }
        meta_json = json.dumps(meta, sort_keys=True)
        payload = dict(arrays)
        payload[_META_KEY] = np.frombuffer(
            meta_json.encode("utf-8"), dtype=np.uint8
        )
        payload[_CHECKSUM_KEY] = np.frombuffer(
            _checksum(arrays, meta_json).encode("ascii"), dtype=np.uint8
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **payload)
        data = buffer.getvalue()
        path = self.path_for(step)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{self.prefix}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self.saves += 1
        self.bytes_written += len(data)
        if obs.OBS.enabled:
            obs.OBS.registry.counter("checkpoint.saves").inc()
            obs.OBS.registry.gauge("checkpoint.bytes").set(len(data))
        _LOG.debug("saved checkpoint step %d (%d bytes) to %s",
                   step, len(data), path)
        self._prune()
        return path

    def _prune(self) -> None:
        if self.keep is None:
            return
        steps = self.steps()
        for step in steps[: max(len(steps) - self.keep, 0)]:
            try:
                self.path_for(step).unlink()
            except OSError:  # pragma: no cover - racing cleanup is benign
                pass

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def steps(self) -> list[int]:
        """Steps with a checkpoint on disk, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        head = f"{self.prefix}-"
        for entry in self.directory.glob(f"{self.prefix}-*.npz"):
            core = entry.name[len(head):-len(".npz")]
            if core.isdigit():
                found.append(int(core))
        return sorted(found)

    def latest(self) -> Path | None:
        """The newest checkpoint's path, or ``None`` when there is none."""
        steps = self.steps()
        return self.path_for(steps[-1]) if steps else None

    def load(self, path: str | Path | None = None) -> tuple[int, dict]:
        """Verify and restore a checkpoint (the latest when unnamed).

        Returns ``(step, state)`` with the original nesting. Raises
        :class:`CheckpointError` when no checkpoint exists, the file
        cannot be parsed, or the stored checksum does not match the
        recomputed content hash.
        """
        if path is None:
            path = self.latest()
            if path is None:
                raise CheckpointError(
                    f"no checkpoint found under {self.directory}"
                )
        path = Path(path)
        try:
            with np.load(path) as data:
                entries = {name: data[name] for name in data.files}
        except FileNotFoundError:
            raise CheckpointError(f"checkpoint {path} does not exist") from None
        except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError
            raise CheckpointError(
                f"checkpoint {path} is unreadable: {exc}"
            ) from exc
        meta_raw = entries.pop(_META_KEY, None)
        stored = entries.pop(_CHECKSUM_KEY, None)
        if meta_raw is None or stored is None:
            raise CheckpointError(
                f"checkpoint {path} is missing its metadata/checksum entries"
            )
        try:
            meta_json = meta_raw.tobytes().decode("utf-8")
            meta = json.loads(meta_json)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"checkpoint {path} has corrupt metadata: {exc}"
            ) from exc
        expected = _checksum(entries, meta_json)
        if stored.tobytes().decode("ascii", errors="replace") != expected:
            raise CheckpointError(
                f"checkpoint {path} failed checksum verification "
                "(corrupt or tampered content)"
            )
        state = _unflatten(entries, meta.get("scalars", {}))
        return int(meta["step"]), state

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        """Flat counter dict (:class:`repro.obs.StatsSource`)."""
        return {
            "saves": self.saves,
            "bytes_written": self.bytes_written,
            "on_disk": len(self.steps()),
        }

    def reset(self) -> None:
        """Zero the counters (files on disk are untouched)."""
        self.saves = 0
        self.bytes_written = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Checkpointer({str(self.directory)!r}, keep={self.keep}, "
            f"saves={self.saves})"
        )
