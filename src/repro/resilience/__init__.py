"""repro.resilience — fault injection, checkpoints, and degradation.

The production-readiness layer: every other subsystem assumes a
failure-free world, this one makes failure a first-class, *testable*
input. Four cooperating pieces:

* :mod:`repro.resilience.faults` — seeded, deterministic chaos: a
  declarative :class:`FaultPlan` executed by a :class:`FaultInjector`
  at named sites inside the feature store, the propagation kernels, the
  serving batch executor, and the simulated distributed workers.
* :mod:`repro.resilience.checkpoint` — :class:`Checkpointer`: atomic
  temp-file + rename writes with a content SHA-256, so a training run
  killed mid-epoch resumes bit-identically and a corrupt file is
  detected (:class:`repro.errors.CheckpointError`) instead of silently
  poisoning the resumed run.
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`: the
  closed/open/half-open machine that stops a failing model from
  consuming the worker pool, with stale-fallback degradation wired into
  :class:`repro.serving.ServingRuntime`.
* :mod:`repro.resilience.retry` — :func:`classify_error` (transient vs
  permanent) and :class:`RetryPolicy` (capped exponential backoff with
  seeded jitter): transient failures are retried with spacing,
  deterministic failures fail fast.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, STATE_CODES, CircuitBreaker
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULTS,
    KNOWN_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    clear_injector,
    inject,
    install_injector,
)
from repro.resilience.retry import PERMANENT, TRANSIENT, RetryPolicy, classify_error

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FAULTS",
    "FAULT_KINDS",
    "KNOWN_SITES",
    "inject",
    "install_injector",
    "clear_injector",
    "Checkpointer",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "STATE_CODES",
    "RetryPolicy",
    "classify_error",
    "TRANSIENT",
    "PERMANENT",
]
