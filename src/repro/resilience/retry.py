"""Typed error classification and exponential backoff with jitter.

The one rule every retry loop in the library follows: *retry only what
can plausibly succeed on retry*. :func:`classify_error` splits a raised
exception into ``"transient"`` (derives from
:class:`repro.errors.TransientError` or carries a truthy ``transient``
attribute) versus ``"permanent"`` (everything else — an unknown model, a
shape mismatch, a bug). :class:`RetryPolicy` then spaces transient
retries with capped exponential backoff plus seeded jitter, so a burst
of failures does not re-synchronise into a retry stampede while the
schedule stays reproducible under test.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.errors import TransientError
from repro.utils.validation import check_int_range, check_positive, check_probability

TRANSIENT = "transient"
PERMANENT = "permanent"


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` for a raised exception.

    Transient means *retry may help*: the exception derives from
    :class:`TransientError` or exposes a truthy ``transient`` attribute
    (the duck-typed escape hatch for exceptions the library does not
    own). Everything else is permanent and must fail fast — retrying a
    deterministic failure only multiplies its cost.
    """
    if isinstance(exc, TransientError):
        return TRANSIENT
    if getattr(exc, "transient", False):
        return TRANSIENT
    return PERMANENT


class RetryPolicy:
    """Bounded retry with capped exponential backoff and seeded jitter.

    Delay before retry ``k`` (1-based) is ``base_delay_s * 2**(k-1)``
    capped at ``max_delay_s``, then scaled by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` drawn from a seeded stream.

    Parameters
    ----------
    max_retries:
        Retry budget per operation; ``0`` disables retry entirely.
    base_delay_s, max_delay_s:
        Backoff range (``base_delay_s`` may be 0 for spin-retry tests).
    jitter:
        Relative jitter fraction in ``[0, 1]``.
    seed:
        Seeds the jitter stream (``None`` = fresh entropy).
    sleep:
        Injectable so tests can observe delays without waiting them.
    """

    def __init__(
        self,
        max_retries: int = 3,
        base_delay_s: float = 0.01,
        max_delay_s: float = 1.0,
        jitter: float = 0.5,
        seed: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        check_int_range("max_retries", max_retries, 0)
        check_positive("base_delay_s", base_delay_s, strict=False)
        check_positive("max_delay_s", max_delay_s, strict=False)
        check_probability("jitter", jitter)
        self.max_retries = max_retries
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._sleep = sleep
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def should_retry(
        self,
        exc: BaseException,
        retries_done: int,
        remaining_s: float | None = None,
    ) -> bool:
        """Whether to retry after ``exc`` given ``retries_done`` so far.

        ``remaining_s`` is the time left on the caller's deadline. A
        retry is only worth scheduling if the *worst-case* jittered
        backoff before the next attempt still fits inside the deadline —
        otherwise the sleep itself would blow the budget and the caller
        would time out mid-backoff instead of failing promptly with the
        last real error.
        """
        if retries_done >= self.max_retries:
            return False
        if classify_error(exc) != TRANSIENT:
            return False
        if remaining_s is not None:
            return self.worst_delay_s(retries_done + 1) < remaining_s
        return True

    def worst_delay_s(self, retry: int) -> float:
        """Upper bound on :meth:`delay_s` for retry ``retry`` (1-based).

        Deterministic (consumes no jitter randomness), so deadline
        checks never perturb the reproducible backoff schedule.
        """
        check_int_range("retry", retry, 1)
        base = min(self.base_delay_s * 2 ** (retry - 1), self.max_delay_s)
        return base * (1.0 + self.jitter)

    def delay_s(self, retry: int) -> float:
        """The jittered backoff before retry number ``retry`` (1-based)."""
        check_int_range("retry", retry, 1)
        base = min(self.base_delay_s * 2 ** (retry - 1), self.max_delay_s)
        if base == 0.0:
            return 0.0
        if self.jitter == 0.0:
            return base
        with self._lock:
            factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return base * factor

    def backoff(self, retry: int, remaining_s: float | None = None) -> float:
        """Sleep the retry's delay; returns the seconds slept.

        With ``remaining_s`` set, a delay that would not fit in the
        remaining deadline is skipped entirely (returns ``0.0`` without
        sleeping) — never sleep past a deadline the caller is about to
        enforce.
        """
        delay = self.delay_s(retry)
        if remaining_s is not None and delay >= remaining_s:
            return 0.0
        if delay > 0.0:
            self._sleep(delay)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"base={self.base_delay_s}s, cap={self.max_delay_s}s, "
            f"jitter={self.jitter})"
        )
