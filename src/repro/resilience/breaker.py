"""Circuit breaker: stop hammering a failing model, probe, recover.

The classic three-state machine, tuned for the serving path:

* **closed** — requests flow; outcomes land in a sliding window of the
  last ``window`` calls. When the window holds at least ``min_calls``
  outcomes and the failure rate reaches ``failure_threshold``, the
  breaker *opens*.
* **open** — :meth:`CircuitBreaker.allow` answers ``False`` (the runtime
  serves a stale fallback or rejects with
  :class:`repro.errors.CircuitOpenError`) until ``cooldown_s`` elapses.
* **half-open** — after the cooldown, up to ``half_open_probes`` calls
  are let through as probes. One recorded success closes the breaker
  and clears the window; one recorded failure reopens it and restarts
  the cooldown.

All transitions happen inside :meth:`allow` / :meth:`record_success` /
:meth:`record_failure` under one lock; the injectable ``clock`` makes
the cooldown deterministic under test.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from repro import obs
from repro.utils.concurrency import NULL_LOCK, make_lock
from repro.utils.validation import check_fraction, check_int_range, check_positive

_LOG = obs.get_logger("repro.resilience.breaker")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the ``breaker.state`` gauge.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Sliding-window failure-rate breaker with half-open probing.

    Parameters
    ----------
    failure_threshold:
        Failure rate in ``(0, 1]`` that opens the breaker.
    window:
        Number of most-recent outcomes the rate is computed over.
    min_calls:
        Outcomes required in the window before the rate is trusted
        (prevents one early failure from opening a cold breaker).
    cooldown_s:
        Seconds the breaker stays open before probing.
    half_open_probes:
        Concurrent probe budget while half-open.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        threadsafe: bool = True,
    ) -> None:
        check_fraction("failure_threshold", failure_threshold)
        check_int_range("window", window, 1)
        check_int_range("min_calls", min_calls, 1)
        check_positive("cooldown_s", cooldown_s)
        check_int_range("half_open_probes", half_open_probes, 1)
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = make_lock(threadsafe)
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.rejected = 0
        self.opens = 0
        self.closes = 0

    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        with self._lock or NULL_LOCK:
            return self._probe_state()

    def _probe_state(self) -> str:
        """Current state, promoting open→half-open when the cooldown is
        over. Caller holds the lock."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probes_inflight = 0
            _LOG.debug("breaker half-open after %.3fs cooldown", self.cooldown_s)
        return self._state

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        Half-open grants at most ``half_open_probes`` in-flight probes;
        a refused request is counted in :attr:`rejected`.
        """
        with self._lock or NULL_LOCK:
            state = self._probe_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._probes_inflight < self.half_open_probes:
                self._probes_inflight += 1
                return True
            self.rejected += 1
            return False

    def release_probe(self) -> None:
        """Return an admitted-but-unused call slot.

        For a permitted call that resolved *without* exercising the
        backend (store hit, load shed, aborted submit): the outcome says
        nothing about backend health, so no success/failure is recorded
        — but any half-open probe slot the call consumed must be handed
        back, or a breaker with ``half_open_probes=1`` would wait
        forever for a probe verdict that can never arrive.
        """
        with self._lock or NULL_LOCK:
            if self._state == HALF_OPEN and self._probes_inflight > 0:
                self._probes_inflight -= 1

    def record_success(self) -> None:
        """A permitted call completed; closes a half-open breaker."""
        with self._lock or NULL_LOCK:
            state = self._probe_state()
            if state == HALF_OPEN:
                self._state = CLOSED
                self._outcomes.clear()
                self._probes_inflight = 0
                self.closes += 1
                _LOG.info("breaker closed after successful probe")
            else:
                self._outcomes.append(False)

    def record_failure(self) -> None:
        """A permitted call failed; may open (or reopen) the breaker."""
        with self._lock or NULL_LOCK:
            state = self._probe_state()
            if state == HALF_OPEN:
                self._open()
                return
            self._outcomes.append(True)
            if (
                state == CLOSED
                and len(self._outcomes) >= self.min_calls
                and self._failure_rate() >= self.failure_threshold
            ):
                self._open()

    def _open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_inflight = 0
        self.opens += 1
        _LOG.warning(
            "breaker open (failure rate %.2f over %d calls)",
            self._failure_rate(), len(self._outcomes),
        )

    def trip(self) -> None:
        """Force the breaker open immediately (idempotent while open).

        The pre-emptive path: an SLO monitor watching p99 latency or the
        error budget trips the breaker *before* the failure-rate window
        would — the normal cooldown → half-open → probe recovery then
        applies unchanged.
        """
        with self._lock or NULL_LOCK:
            if self._state != OPEN:
                _LOG.warning("breaker tripped externally (was %s)", self._state)
                self._open()
            else:
                self._opened_at = self._clock()

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        """Flat counter dict (:class:`repro.obs.StatsSource`); ``state``
        uses :data:`STATE_CODES` (0 closed / 1 half-open / 2 open)."""
        with self._lock or NULL_LOCK:
            return {
                "state": STATE_CODES[self._probe_state()],
                "failure_rate": self._failure_rate(),
                "window_calls": len(self._outcomes),
                "rejected": self.rejected,
                "opens": self.opens,
                "closes": self.closes,
            }

    def reset(self) -> None:
        """Force-close and forget all history."""
        with self._lock or NULL_LOCK:
            self._state = CLOSED
            self._outcomes.clear()
            self._probes_inflight = 0
            self.rejected = 0
            self.opens = 0
            self.closes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state}, "
            f"threshold={self.failure_threshold}, opens={self.opens})"
        )
