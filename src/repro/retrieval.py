"""GraphRAG-lite (§3.4.1): community-indexed retrieval over node embeddings.

The tutorial's large-model direction: GraphRAG "operates knowledge graphs
to provide semantic information in LLM inference", and its *bottleneck* is
the community detection + querying layer. This module reproduces exactly
that layer, minus the LLM (which contributes no graph-side cost):

1. detect communities (:func:`~repro.analytics.communities.label_propagation_communities`),
2. summarise each community by its centroid embedding (the "community
   summary" of the GraphRAG pipeline),
3. answer a query embedding in two stages — rank community centroids,
   then scan only the top communities' members — touching a fraction of
   the corpus per query compared to a flat scan.

:attr:`CommunityIndex.last_scanned` exposes the per-query work so the
scan-reduction claim is measurable (benchmark E22).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.communities import label_propagation_communities
from repro.errors import ConfigError, NotFittedError, ShapeError
from repro.graph.core import Graph
from repro.utils.validation import check_int_range


def _normalize_rows(mat: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(mat, axis=1, keepdims=True)
    return mat / np.where(norms > 0, norms, 1.0)


def flat_retrieve(
    embeddings: np.ndarray, query: np.ndarray, k: int
) -> np.ndarray:
    """Exact top-k by cosine similarity over the whole corpus (baseline)."""
    check_int_range("k", k, 1)
    sims = _normalize_rows(np.asarray(embeddings)) @ _unit(query)
    order = np.lexsort((np.arange(len(sims)), -sims))
    return order[:k]


def _unit(query: np.ndarray) -> np.ndarray:
    query = np.asarray(query, dtype=np.float64).ravel()
    norm = np.linalg.norm(query)
    if norm == 0:
        raise ConfigError("query embedding must be non-zero")
    return query / norm


class CommunityIndex:
    """Two-stage community-summary retrieval index.

    Parameters
    ----------
    n_probe:
        Communities scanned per query (recall/cost knob, like IVF probes).
    """

    def __init__(self, n_probe: int = 2, seed=None) -> None:
        check_int_range("n_probe", n_probe, 1)
        self.n_probe = n_probe
        self._seed = seed
        self._embeddings: np.ndarray | None = None
        self._assignment: np.ndarray | None = None
        self._centroids: np.ndarray | None = None
        self._members: list[np.ndarray] | None = None
        self.last_scanned = 0

    def build(
        self,
        graph: Graph,
        embeddings: np.ndarray,
        assignment: np.ndarray | None = None,
    ) -> "CommunityIndex":
        """Detect communities (unless given) and build centroid summaries."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2 or embeddings.shape[0] != graph.n_nodes:
            raise ShapeError("embeddings must be (n_nodes, d)")
        if assignment is None:
            assignment = label_propagation_communities(graph, seed=self._seed)
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.n_nodes,):
            raise ShapeError("assignment must have one entry per node")
        n_comm = int(assignment.max()) + 1
        unit = _normalize_rows(embeddings)
        centroids = np.zeros((n_comm, embeddings.shape[1]))
        np.add.at(centroids, assignment, unit)
        sizes = np.bincount(assignment, minlength=n_comm).astype(np.float64)
        centroids /= sizes[:, None]
        self._embeddings = unit
        self._assignment = assignment
        self._centroids = _normalize_rows(centroids)
        self._members = [
            np.flatnonzero(assignment == c) for c in range(n_comm)
        ]
        return self

    @property
    def n_communities(self) -> int:
        if self._members is None:
            raise NotFittedError("call build() first")
        return len(self._members)

    def retrieve(self, query: np.ndarray, k: int) -> np.ndarray:
        """Top-k node ids for ``query``, scanning only probed communities."""
        check_int_range("k", k, 1)
        if self._embeddings is None:
            raise NotFittedError("call build() first")
        q = _unit(query)
        comm_sims = self._centroids @ q
        probes = np.lexsort((np.arange(len(comm_sims)), -comm_sims))[
            : self.n_probe
        ]
        candidates = np.concatenate([self._members[c] for c in probes])
        self.last_scanned = len(candidates) + len(comm_sims)
        sims = self._embeddings[candidates] @ q
        order = np.lexsort((candidates, -sims))
        return candidates[order[:k]]

    def recall_against_flat(
        self, queries: np.ndarray, k: int
    ) -> tuple[float, float]:
        """(mean top-k recall vs flat scan, mean scanned fraction)."""
        if self._embeddings is None:
            raise NotFittedError("call build() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        recalls, scanned = [], []
        n = len(self._embeddings)
        for q in queries:
            truth = set(flat_retrieve(self._embeddings, q, k).tolist())
            got = set(self.retrieve(q, k).tolist())
            recalls.append(len(truth & got) / k)
            scanned.append(self.last_scanned / n)
        return float(np.mean(recalls)), float(np.mean(scanned))
