"""Machine-readable Figure 1: the tutorial's taxonomy, mapped to code.

The paper's single figure organises graph-data-management techniques for
scalable GNNs into a tree. :data:`TAXONOMY` reproduces that tree; every
leaf names the module (and optionally attribute) in this library that
implements it, so :func:`coverage_report` can *prove* the reproduction is
complete by importing each implementation. :func:`render` prints the
figure as indented text (benchmark E1).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass


@dataclass(frozen=True)
class TaxonomyNode:
    """One box of Figure 1.

    Attributes
    ----------
    name:
        The label as printed in the paper.
    section:
        Paper section covering this node ("" for structural nodes).
    implementation:
        Dotted path ``module`` or ``module:attribute`` implementing the
        leaf; empty for structural nodes and future directions.
    children:
        Child boxes.
    """

    name: str
    section: str = ""
    implementation: str = ""
    children: tuple["TaxonomyNode", ...] = ()


def _leaf(name: str, section: str, implementation: str) -> TaxonomyNode:
    return TaxonomyNode(name, section, implementation)


TAXONOMY = TaxonomyNode(
    "Data Management for Scalable GNN",
    children=(
        TaxonomyNode(
            "Classic Method",
            section="3.1",
            children=(
                _leaf("Graph Partition", "3.1.2", "repro.editing.partition"),
                _leaf("Graph Sampling", "3.1.2", "repro.editing.sampling"),
                _leaf(
                    "Decoupled Propagation", "3.1.2", "repro.models.sgc:SGC"
                ),
                _leaf(
                    "Training System",
                    "3.1.2",
                    "repro.training.distributed:simulate_distributed_training",
                ),
            ),
        ),
        TaxonomyNode(
            "Graph Analytics",
            section="3.2",
            children=(
                TaxonomyNode(
                    "Spectral Embeddings",
                    section="3.2.1",
                    children=(
                        _leaf(
                            "Combined Embeddings", "3.2.1", "repro.models.ld2:LD2"
                        ),
                        _leaf(
                            "Adaptive Basis",
                            "3.2.1",
                            "repro.analytics.spectral:krylov_filter_signal",
                        ),
                    ),
                ),
                TaxonomyNode(
                    "Node-pair Similarity",
                    section="3.2.2",
                    children=(
                        _leaf(
                            "Topology Similarity",
                            "3.2.2",
                            "repro.models.simga:SIMGA",
                        ),
                        _leaf(
                            "Hub Labeling",
                            "3.2.2",
                            "repro.analytics.hub_labeling:HubLabeling",
                        ),
                    ),
                ),
                TaxonomyNode(
                    "Graph Algebras",
                    section="3.2.3",
                    children=(
                        _leaf(
                            "Matrix Decomposition",
                            "3.2.3",
                            "repro.models.implicit:ImplicitGNN",
                        ),
                        _leaf(
                            "Approximate Iteration",
                            "3.2.3",
                            "repro.models.implicit:MultiscaleImplicitGNN",
                        ),
                        _leaf(
                            "Graph Simplification",
                            "3.2.3",
                            "repro.editing.coarsen:coarse_node_batches",
                        ),
                    ),
                ),
            ),
        ),
        TaxonomyNode(
            "Graph Editing",
            section="3.3",
            children=(
                TaxonomyNode(
                    "Graph Sparsification",
                    section="3.3.1",
                    children=(
                        _leaf(
                            "Node-level", "3.3.1", "repro.models.scara:SCARA"
                        ),
                        _leaf(
                            "Layer-level",
                            "3.3.1",
                            "repro.models.atp:NIGCN",
                        ),
                        _leaf(
                            "Subgraph-level", "3.3.1", "repro.models.gamlp:GAMLP"
                        ),
                    ),
                ),
                TaxonomyNode(
                    "Graph Sampling",
                    section="3.3.2",
                    children=(
                        _leaf(
                            "Graph Expressiveness",
                            "3.3.2",
                            "repro.models.pyramid:PyramidGNN",
                        ),
                        _leaf(
                            "Graph Variance",
                            "3.3.2",
                            "repro.editing.sampling:LaborSampler",
                        ),
                        _leaf(
                            "Device Acceleration",
                            "3.3.2",
                            "repro.training.pipeline:plan_execution",
                        ),
                    ),
                ),
                TaxonomyNode(
                    "Subgraph Extraction",
                    section="3.3.3",
                    children=(
                        _leaf(
                            "Subgraph Generation",
                            "3.3.3",
                            "repro.editing.subgraph:ego_subgraph",
                        ),
                        _leaf(
                            "Subgraph Storage",
                            "3.3.3",
                            "repro.editing.subgraph:WalkSetStorage",
                        ),
                    ),
                ),
                TaxonomyNode(
                    "Graph Coarsening",
                    section="3.3.4",
                    children=(
                        _leaf(
                            "Structure-based",
                            "3.3.4",
                            "repro.editing.coarsen:multilevel_coarsen",
                        ),
                        _leaf(
                            "Spectral-based",
                            "3.3.4",
                            "repro.editing.coarsen:eigenbasis_matching_condense",
                        ),
                    ),
                ),
            ),
        ),
        TaxonomyNode(
            "Future Direction",
            section="3.4",
            children=(
                # The paper lists these as open directions; this library
                # ships working prototypes for each (see DESIGN.md E18-E22).
                _leaf("Large Model", "3.4.1", "repro.retrieval:CommunityIndex"),
                _leaf(
                    "Data Efficiency",
                    "3.4.2",
                    "repro.models.contrastive:train_contrastive",
                ),
                _leaf(
                    "Training System",
                    "3.4.3",
                    "repro.training.pipeline:pipelined_makespan",
                ),
            ),
        ),
    ),
)

CHALLENGES = (
    "Neighborhood Explosion",
    "Limited Memory",
    "Multi-scale",
    "Fine-grained",
)


def render(node: TaxonomyNode = TAXONOMY, indent: int = 0) -> str:
    """The taxonomy as indented text (our rendering of Figure 1)."""
    marker = "  " * indent + ("- " if indent else "")
    section = f"  [{node.section}]" if node.section else ""
    impl = f"  -> {node.implementation}" if node.implementation else ""
    lines = [f"{marker}{node.name}{section}{impl}"]
    for child in node.children:
        lines.append(render(child, indent + 1))
    return "\n".join(lines)


def iter_leaves(node: TaxonomyNode = TAXONOMY):
    """Yield all leaf nodes in figure order."""
    if not node.children:
        yield node
        return
    for child in node.children:
        yield from iter_leaves(child)


def resolve_implementation(leaf: TaxonomyNode):
    """Import and return the object implementing ``leaf``.

    Raises ``ImportError``/``AttributeError`` on a broken mapping; returns
    ``None`` for future-direction leaves with no implementation.
    """
    if not leaf.implementation:
        return None
    module_name, _, attr = leaf.implementation.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr) if attr else module


def coverage_report() -> dict[tuple[str, str], bool]:
    """Map each (leaf name, section) to whether its implementation imports.

    Keyed by the pair because Figure 1 reuses the label "Training System"
    in both the classic-method and future-direction branches.
    """
    report: dict[tuple[str, str], bool] = {}
    for leaf in iter_leaves():
        key = (leaf.name, leaf.section)
        if not leaf.implementation:
            report[key] = False
            continue
        try:
            resolve_implementation(leaf)
            report[key] = True
        except (ImportError, AttributeError):
            report[key] = False
    return report
