"""Synthetic labelled-graph generators and train/val/test splitting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.core import Graph
from repro.graph.generators import barabasi_albert_graph, stochastic_block_model
from repro.utils.rng import as_rng
from repro.utils.validation import check_int_range, check_probability


@dataclass(frozen=True)
class Split:
    """Index arrays for a train/val/test split."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    @property
    def n_total(self) -> int:
        return len(self.train) + len(self.val) + len(self.test)


def random_split(
    n: int, train_frac: float = 0.6, val_frac: float = 0.2, seed=None
) -> Split:
    """Disjoint uniform split; the remainder after train/val is test."""
    check_int_range("n", n, 3)
    check_probability("train_frac", train_frac)
    check_probability("val_frac", val_frac)
    if train_frac + val_frac >= 1.0:
        raise ConfigError("train_frac + val_frac must be < 1")
    rng = as_rng(seed)
    perm = rng.permutation(n)
    n_train = max(1, int(train_frac * n))
    n_val = max(1, int(val_frac * n))
    return Split(
        train=np.sort(perm[:n_train]),
        val=np.sort(perm[n_train : n_train + n_val]),
        test=np.sort(perm[n_train + n_val :]),
    )


def contextual_sbm(
    n_nodes: int,
    n_classes: int = 2,
    homophily: float = 0.8,
    avg_degree: float = 10.0,
    n_features: int = 16,
    feature_signal: float = 1.0,
    seed=None,
) -> tuple[Graph, Split]:
    """Contextual SBM: community graph + class-conditioned Gaussian features.

    ``homophily`` is the probability that an edge endpoint pair shares a
    class: 1.0 is a pure community graph, ``1/n_classes`` is structureless,
    and values below that are *heterophilous* (edges prefer to cross
    classes) — the axis benchmark E13 sweeps.

    ``feature_signal`` scales the class-mean separation relative to
    unit-variance noise.
    """
    check_int_range("n_nodes", n_nodes, 8)
    check_int_range("n_classes", n_classes, 2)
    check_probability("homophily", homophily)
    rng = as_rng(seed)
    sizes = [n_nodes // n_classes] * n_classes
    sizes[0] += n_nodes - sum(sizes)
    # Edge budget: n * avg_degree / 2 edges split into intra/inter mass.
    # p_in scales with homophily, p_out with (1 - homophily) spread over
    # the other classes.
    n_intra_pairs = sum(s * (s - 1) / 2 for s in sizes)
    n_inter_pairs = n_nodes * (n_nodes - 1) / 2 - n_intra_pairs
    target_edges = n_nodes * avg_degree / 2.0
    p_in = min(1.0, homophily * target_edges / max(n_intra_pairs, 1))
    p_out = min(1.0, (1.0 - homophily) * target_edges / max(n_inter_pairs, 1))
    p_matrix = np.full((n_classes, n_classes), p_out)
    np.fill_diagonal(p_matrix, p_in)
    graph = stochastic_block_model(sizes, p_matrix, seed=rng)
    means = rng.normal(size=(n_classes, n_features))
    means *= feature_signal / np.linalg.norm(means, axis=1, keepdims=True)
    x = means[graph.y] + rng.normal(size=(n_nodes, n_features))
    graph = graph.with_data(x=x)
    return graph, random_split(n_nodes, seed=rng)


def scale_free_classification(
    n_nodes: int,
    n_classes: int = 3,
    attachment: int = 4,
    n_features: int = 16,
    feature_signal: float = 1.0,
    seed=None,
) -> tuple[Graph, Split]:
    """Power-law graph with topology-local labels (BFS Voronoi regions).

    ``n_classes`` random seed nodes are planted; every node takes the label
    of its nearest seed (ties broken by seed order), yielding the
    degree-skewed, locally-consistent labels typical of social networks.
    Features are class-conditioned Gaussians.
    """
    check_int_range("n_nodes", n_nodes, 8)
    check_int_range("n_classes", n_classes, 2)
    rng = as_rng(seed)
    graph = barabasi_albert_graph(n_nodes, attachment, seed=rng)
    seeds = rng.choice(n_nodes, size=n_classes, replace=False)
    labels = np.full(n_nodes, -1, dtype=np.int64)
    frontier = list(seeds)
    labels[seeds] = np.arange(n_classes)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            for v in graph.neighbors(int(u)):
                v = int(v)
                if labels[v] < 0:
                    labels[v] = labels[u]
                    next_frontier.append(v)
        frontier = next_frontier
    labels[labels < 0] = 0  # disconnected leftovers (BA is connected)
    means = rng.normal(size=(n_classes, n_features))
    means *= feature_signal / np.linalg.norm(means, axis=1, keepdims=True)
    x = means[labels] + rng.normal(size=(n_nodes, n_features))
    graph = graph.with_data(x=x, y=labels)
    return graph, random_split(n_nodes, seed=rng)


def chain_classification(
    n_chains: int,
    chain_length: int,
    n_features: int = 8,
    seed=None,
) -> tuple[Graph, Split]:
    """Long-range dependency task: the label lives at the chain's head.

    Each chain is a path graph; only the head node carries the (binary)
    class signal in its features — every other node has *identical*
    (zero) features, so classifying a tail node requires information to
    travel ``chain_length - 1`` hops; there is nothing local to memorise.
    Finite-depth GNNs fail beyond their receptive field; implicit GNNs do
    not (benchmark E14).

    The split is over *tail halves* of chains so that test accuracy
    directly measures long-range propagation.
    """
    check_int_range("n_chains", n_chains, 2)
    check_int_range("chain_length", chain_length, 3)
    rng = as_rng(seed)
    n = n_chains * chain_length
    edges = []
    labels = np.empty(n, dtype=np.int64)
    x = np.zeros((n, n_features))
    for c in range(n_chains):
        base = c * chain_length
        cls = int(rng.integers(0, 2))
        labels[base : base + chain_length] = cls
        signal = np.zeros(n_features)
        signal[cls] = 5.0
        x[base] = signal
        for i in range(chain_length - 1):
            edges.append((base + i, base + i + 1))
    graph = Graph.from_edges(np.asarray(edges), n, x=x, y=labels)
    # Train on the front half of each chain, test on the far half.
    positions = np.arange(n) % chain_length
    front = positions < chain_length // 2
    train = np.flatnonzero(front & (positions > 0))
    far = np.flatnonzero(~front)
    rng.shuffle(far)
    half = len(far) // 2
    return graph, Split(
        train=train, val=np.sort(far[:half]), test=np.sort(far[half:])
    )
