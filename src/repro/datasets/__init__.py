"""Synthetic node-classification workloads with controllable statistics.

Stand-ins for the industrial graphs the tutorial motivates; every generator
returns a featured, labelled :class:`~repro.graph.Graph` plus a
:class:`Split`. The key control knobs are graph size, degree, homophily
(for the heterophily experiments) and feature signal-to-noise.
"""

from repro.datasets.synthetic import (
    Split,
    chain_classification,
    contextual_sbm,
    random_split,
    scale_free_classification,
)

__all__ = [
    "Split",
    "random_split",
    "contextual_sbm",
    "scale_free_classification",
    "chain_classification",
]
