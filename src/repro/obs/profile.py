"""Low-overhead sampling profiler with flamegraph-style aggregation.

A :class:`SamplingProfiler` wakes a daemon thread every ``interval_s``
seconds, grabs every thread's current stack via
``sys._current_frames()``, filters frames down to this package (the
SpMM kernels, halo exchange, serving runtime — the code we actually
own), and folds each observed stack into a count-trie
(:class:`ProfileNode`). The result reads like a flamegraph: a node's
``count`` is how many samples saw that call path on-stack, so hot SpMM
inner loops and halo-exchange waits surface without instrumenting
either — the target code runs untouched between samples, which keeps
the cost a function of the sampling rate, not the workload.

Samples can also be fed manually (:meth:`SamplingProfiler.sample_here`)
for deterministic tests. The aggregate exports as a nested dict
(``to_dict``), as ``folded`` lines (the ``flamegraph.pl`` input format),
and as a flat :class:`repro.obs.StatsSource` snapshot.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ConfigError
from repro.obs.logs import get_logger

_LOG = get_logger("repro.obs.profile")

_PKG_MARKER = f"{Path(__file__).parent.parent}"  # .../src/repro


class ProfileNode:
    """One frame in the aggregated call tree (a count-trie node)."""

    __slots__ = ("name", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.children: dict[str, "ProfileNode"] = {}

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name)
            self.children[name] = node
        return node

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "children": [
                c.to_dict()
                for c in sorted(
                    self.children.values(), key=lambda c: -c.count
                )
            ],
        }

    def walk(self):
        yield self
        for child in self.children.values():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProfileNode({self.name!r}, count={self.count})"


def _frame_label(frame, package_filter: str = _PKG_MARKER) -> str | None:
    """``module.function`` for frames inside the filter, else None.

    An empty ``package_filter`` accepts every frame (labelled by file
    stem), which is how tests profile code living outside the package.
    """
    filename = frame.f_code.co_filename
    if package_filter and package_filter not in filename:
        return None
    marker = filename.rfind("repro")
    if marker >= 0:
        module = filename[marker:].replace("/", ".").replace("\\", ".")
        if module.endswith(".py"):
            module = module[:-3]
    else:
        module = Path(filename).stem or filename
    return f"{module}.{frame.f_code.co_name}"


def stack_labels(frame, package_filter: str = _PKG_MARKER) -> list[str]:
    """Root-first package-filtered labels for one thread's live stack."""
    labels: list[str] = []
    while frame is not None:
        label = _frame_label(frame, package_filter)
        if label is not None:
            labels.append(label)
        frame = frame.f_back
    labels.reverse()
    return labels


class SamplingProfiler:
    """Periodic whole-process stack sampler aggregating into a trie.

    Usable as a context manager::

        with SamplingProfiler(interval_s=0.005) as prof:
            model(prep, x)
        hot = prof.hottest(5)

    The sampler thread is a daemon and never touches the sampled
    threads — a sample is a read of ``sys._current_frames()`` plus a
    trie update, both on the profiler's own thread.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        max_depth: int = 64,
        package_filter: str = _PKG_MARKER,
    ) -> None:
        if interval_s <= 0:
            raise ConfigError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.max_depth = int(max_depth)
        self.package_filter = package_filter
        self.root = ProfileNode("root")
        self.samples = 0
        self.empty_samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #

    def _ingest(self, labels: Iterable[str]) -> None:
        labels = list(labels)[-self.max_depth:]
        with self._lock:
            self.samples += 1
            if not labels:
                self.empty_samples += 1
                return
            node = self.root
            node.count += 1
            for label in labels:
                node = node.child(label)
                node.count += 1

    def sample_once(self) -> int:
        """Sample every live thread once; returns stacks ingested."""
        me = threading.get_ident()
        ingested = 0
        for tid, frame in sys._current_frames().items():
            if tid == me:
                continue
            self._ingest(stack_labels(frame, self.package_filter))
            ingested += 1
        return ingested

    def sample_here(self) -> None:
        """Ingest the *calling* thread's stack (deterministic testing)."""
        self._ingest(stack_labels(sys._getframe(1), self.package_filter))

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - the profiler must never crash the host
                _LOG.exception("profiler sample failed; stopping")
                return

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise ConfigError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "samples": self.samples,
                "empty_samples": self.empty_samples,
                "interval_s": self.interval_s,
                "tree": self.root.to_dict(),
            }

    def folded(self) -> list[str]:
        """``flamegraph.pl``-style folded lines: ``a;b;c <count>``.

        Each line carries a node's *self* count (samples that ended at
        that frame), which is what flamegraph renderers expect.
        """
        lines: list[str] = []

        def visit(node: ProfileNode, path: list[str]) -> None:
            here = path + [node.name]
            self_count = node.count - sum(
                c.count for c in node.children.values()
            )
            if self_count > 0 and path:
                lines.append(f"{';'.join(here)} {self_count}")
            for child in node.children.values():
                visit(child, here)

        with self._lock:
            for child in self.root.children.values():
                visit(child, [])
        return lines

    def hottest(self, n: int = 10) -> list[tuple[str, int]]:
        """Top-``n`` frames by inclusive sample count (root excluded)."""
        with self._lock:
            nodes = [
                (node.name, node.count)
                for node in self.root.walk()
                if node is not self.root
            ]
        nodes.sort(key=lambda pair: -pair[1])
        return nodes[:n]

    # ------------------------------------------------------------------ #
    # StatsSource protocol
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                "samples": float(self.samples),
                "empty_samples": float(self.empty_samples),
                "unique_frames": float(
                    sum(1 for _ in self.root.walk()) - 1
                ),
            }

    def reset(self) -> None:
        with self._lock:
            self.root = ProfileNode("root")
            self.samples = 0
            self.empty_samples = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SamplingProfiler(interval_s={self.interval_s}, "
            f"samples={self.samples})"
        )
