"""The uniform stats protocol every cache/queue/histogram speaks.

Before :mod:`repro.obs`, each component exposed reuse accounting its own
way — ``OperatorCache.stats`` returned a :class:`CacheStats`,
``LatencyHistogram`` had ``summary()``, ``BatchingQueue`` had loose
attributes. :class:`StatsSource` is the shared contract: ``snapshot()``
returns a flat ``{str: scalar}`` dict and ``reset()`` zeroes the counters
*without* dropping cached state (``clear()`` remains the destructive
variant where one exists). Anything satisfying it can be registered on a
:class:`repro.obs.MetricsRegistry` and lands in the unified snapshot.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class StatsSource(Protocol):
    """Structural protocol: flat stats out, counter reset in.

    Satisfied (via duck typing — ``isinstance`` works thanks to
    ``runtime_checkable``) by :class:`repro.perf.OperatorCache`,
    :class:`repro.perf.PropagationEngine`,
    :class:`repro.storage.FeatureStore`,
    :class:`repro.serving.EmbeddingStore`,
    :class:`repro.serving.BatchingQueue`,
    :class:`repro.serving.ServingEngine`, and
    :class:`repro.utils.timer.LatencyHistogram`.
    """

    def snapshot(self) -> dict:
        """Current counters/derived rates as a flat scalar dict."""
        ...

    def reset(self) -> None:
        """Zero the counters (cached payload stays resident)."""
        ...


def cache_stats_dict(stats) -> dict[str, float]:
    """Flatten a :class:`repro.storage.feature_cache.CacheStats` record.

    Shared by every cache's ``snapshot()`` so hit/miss accounting uses
    identical key names across the operator cache, propagation engine,
    feature stores, and embedding store.
    """
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "accesses": stats.accesses,
        "hit_rate": stats.hit_rate,
    }
