"""Stdlib logging under the ``repro.*`` hierarchy.

Library code never prints to stdout: modules grab a child of the
``repro`` logger via :func:`get_logger` (a ``NullHandler`` is installed
at import so an unconfigured application stays silent, per library
convention), and applications/benchmarks opt into output with
:func:`setup_logging`, which attaches exactly one stream handler to the
hierarchy root — calling it again reconfigures rather than duplicates.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

ROOT_LOGGER_NAME = "repro"

_DEFAULT_FORMAT = "%(levelname)s %(name)s: %(message)s"

# Library convention: silence "No handlers could be found" warnings while
# leaving output policy entirely to the embedding application.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

_handler: logging.StreamHandler | None = None


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro.*`` hierarchy.

    ``get_logger()`` returns the hierarchy root; ``get_logger("serving")``
    and ``get_logger("repro.serving")`` both return ``repro.serving``.
    """
    if name is None or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def _coerce_level(level: int | str) -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown logging level {level!r}")
    return resolved


def setup_logging(
    level: int | str = logging.INFO,
    stream: IO[str] | None = None,
    fmt: str = _DEFAULT_FORMAT,
) -> logging.Logger:
    """Attach (or reconfigure) the single ``repro`` stream handler.

    Idempotent: repeated calls adjust level/stream/format on the one
    handler instead of stacking duplicates. Returns the root ``repro``
    logger. ``stream`` defaults to ``sys.stderr``.
    """
    global _handler
    root = logging.getLogger(ROOT_LOGGER_NAME)
    resolved = _coerce_level(level)
    if _handler is not None and _handler in root.handlers:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    _handler.setFormatter(logging.Formatter(fmt))
    _handler.setLevel(resolved)
    root.addHandler(_handler)
    root.setLevel(resolved)
    return root
