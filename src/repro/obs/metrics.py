"""Named instruments + registry: the counting pillar of :mod:`repro.obs`.

Three instrument kinds with label support — :class:`Counter` (monotone
accumulation: requests served, rows patched), :class:`Gauge` (last-value:
epoch loss, bytes resident), :class:`Histogram` (distributions backed by
the same log-bucketed layout as :class:`repro.utils.timer.LatencyHistogram`,
so per-worker histograms merge exactly). A :class:`MetricsRegistry` owns
instruments by name and additionally aggregates *stats sources* — any
object with the ``snapshot()/reset()`` protocol of
:class:`repro.obs.sources.StatsSource` (operator caches, feature stores,
batching queues, latency histograms) — so one :meth:`MetricsRegistry.snapshot`
call returns every cache hit rate, shed count, and latency percentile in a
single flat dict ready to be embedded in benchmark JSON artifacts.

Sources are held by weak reference (a registry never keeps a dead serving
engine's store alive); passing a zero-arg callable instead registers a
*provider* resolved at snapshot time, which is how the process-default
operator cache/propagation engine stay current even when swapped.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable

from repro.errors import ConfigError
from repro.utils.timer import LatencyHistogram


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _merge_labels(
    key: tuple[tuple[str, str], ...], extra: dict[str, Any]
) -> dict[str, str]:
    """A series' labels as a dict, with ``extra`` labels folded in.

    Extra labels win on collision — a coordinator re-labelling a rank's
    series with ``rank=3`` must not be spoofable by the rank publishing
    its own ``rank`` label.
    """
    labels = dict(key)
    labels.update({str(k): str(v) for k, v in extra.items()})
    return labels


def _flat_name(name: str, key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared naming/label plumbing for the three instrument kinds.

    Every instrument carries its own lock: label-series updates are
    read-modify-write on a plain dict, so concurrent ``inc``/``observe``
    calls from serving workers would otherwise lose counts.
    """

    kind = "instrument"

    def __init__(self, name: str, description: str = "") -> None:
        if not name or not isinstance(name, str):
            raise ConfigError(f"instrument name must be a non-empty str, got {name!r}")
        self.name = name
        self.description = description
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Instrument):
    """Monotonically increasing count, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ConfigError(f"counters only go up; got inc({amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label series."""
        with self._lock:
            return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {_flat_name(self.name, k): v for k, v in self._values.items()}

    def dump(self) -> list[list]:
        """Serializable series list ``[[labels_dict, value], ...]``."""
        with self._lock:
            return [[dict(k), v] for k, v in self._values.items()]

    def merge_dump(self, series: list, **extra_labels: Any) -> None:
        """Fold a :meth:`dump` payload in, re-labelled with ``extra_labels``."""
        for labels, value in series:
            self.inc(float(value), **_merge_labels(_label_key(labels), extra_labels))

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(_Instrument):
    """Last-written value, one series per label set."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {_flat_name(self.name, k): v for k, v in self._values.items()}

    def dump(self) -> list[list]:
        """Serializable series list ``[[labels_dict, value], ...]``."""
        with self._lock:
            return [[dict(k), v] for k, v in self._values.items()]

    def merge_dump(self, series: list, **extra_labels: Any) -> None:
        """Fold a :meth:`dump` payload in, re-labelled with ``extra_labels``.

        Gauges are last-value instruments — a blind merge across ranks
        would be a data race on meaning, so each rank's series stays its
        own (the re-label keeps them distinct).
        """
        for labels, value in series:
            self.set(float(value), **_merge_labels(_label_key(labels), extra_labels))

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Histogram(_Instrument):
    """Log-bucketed distribution per label set, mergeable exactly.

    Each label series is backed by a
    :class:`~repro.utils.timer.LatencyHistogram` with this instrument's
    bucket layout, so two :class:`Histogram` instances with the same
    layout merge without approximation error beyond the shared bucketing.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        min_value: float = 1e-6,
        max_value: float = 60.0,
        buckets_per_decade: int = 20,
    ) -> None:
        super().__init__(name, description)
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        self._series: dict[tuple, LatencyHistogram] = {}

    def _hist(self, key: tuple) -> LatencyHistogram:
        """Get-or-create the series for ``key`` — write paths only.

        Reads (:meth:`percentile`, :meth:`count`, :meth:`series`) must
        never allocate: a typo'd label set would otherwise leave a
        permanent empty series polluting every later :meth:`snapshot`.
        """
        with self._lock:
            hist = self._series.get(key)
            if hist is None:
                hist = LatencyHistogram(
                    self.min_value, self.max_value, self.buckets_per_decade,
                    threadsafe=True,
                )
                self._series[key] = hist
            return hist

    def observe(self, value: float, **labels: Any) -> None:
        self._hist(_label_key(labels)).record(float(value))

    def percentile(self, q: float, **labels: Any) -> float:
        """The series percentile; 0.0 for a label set never observed
        (no empty series is allocated — mirror of :meth:`count`)."""
        hist = self._series.get(_label_key(labels))
        return 0.0 if hist is None else hist.percentile(q)

    def count(self, **labels: Any) -> int:
        hist = self._series.get(_label_key(labels))
        return 0 if hist is None else hist.count

    def series(self, **labels: Any) -> LatencyHistogram:
        """The backing histogram for one observed label set.

        Raises :class:`KeyError` for a label set with no observations
        rather than allocating an empty series on a read.
        """
        key = _label_key(labels)
        hist = self._series.get(key)
        if hist is None:
            raise KeyError(
                f"histogram {self.name!r} has no series {_flat_name(self.name, key)!r}"
            )
        return hist

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold every series of ``other`` into this instrument (exact)."""
        with other._lock:
            pairs = list(other._series.items())
        for key, hist in pairs:
            self._hist(key).merge(hist)
        return self

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            pairs = list(self._series.items())
        out: dict[str, float] = {}
        for key, hist in pairs:
            base = _flat_name(self.name, key)
            summary = hist.summary()
            for stat in ("count", "mean", "p50", "p95", "p99", "max"):
                out[f"{base}.{stat}"] = summary[stat]
        return out

    def dump(self) -> dict:
        """Serializable layout + per-series bucket state (lossless).

        Unlike :meth:`snapshot` (derived percentiles), the dump carries
        raw bucket counts so another process can rebuild each series and
        :meth:`merge_dump` them *exactly* — cluster-wide p99 is computed
        from merged buckets, never averaged from per-rank percentiles.
        """
        with self._lock:
            pairs = list(self._series.items())
        return {
            "layout": [self.min_value, self.max_value, self.buckets_per_decade],
            "series": [[dict(k), hist.state()] for k, hist in pairs],
        }

    def merge_dump(self, payload: dict, **extra_labels: Any) -> None:
        """Fold a :meth:`dump` payload in, re-labelled with ``extra_labels``."""
        for labels, state in payload.get("series", ()):
            key = _label_key(_merge_labels(_label_key(labels), extra_labels))
            self._hist(key).merge_state(state)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


class MetricsRegistry:
    """Named instruments + weakly-held stats sources, one flat snapshot.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the same instrument (a name collision across
    kinds raises). :meth:`register_source` attaches any
    ``snapshot()/reset()`` object under a dotted prefix; its keys appear
    in :meth:`snapshot` as ``prefix.key``.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: dict[str, _Instrument] = {}
        # prefix -> weakref to a source, or a zero-arg provider callable.
        self._sources: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Instruments
    # ------------------------------------------------------------------ #

    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                return existing
            instrument = cls(name, description, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        min_value: float = 1e-6,
        max_value: float = 60.0,
        buckets_per_decade: int = 20,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, description,
            min_value=min_value, max_value=max_value,
            buckets_per_decade=buckets_per_decade,
        )

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    # ------------------------------------------------------------------ #
    # Stats sources
    # ------------------------------------------------------------------ #

    def register_source(self, prefix: str, source) -> None:
        """Attach a stats source (or zero-arg provider) under ``prefix``.

        Objects are held weakly: a garbage-collected source silently drops
        out of future snapshots. Re-registering a prefix replaces the
        previous source (latest engine wins).
        """
        if not prefix or not isinstance(prefix, str):
            raise ConfigError(f"source prefix must be a non-empty str, got {prefix!r}")
        if callable(source) and not hasattr(source, "snapshot"):
            with self._lock:
                self._sources[prefix] = source
            return
        if not hasattr(source, "snapshot"):
            raise ConfigError(
                f"source for {prefix!r} must expose snapshot() "
                f"(see repro.obs.StatsSource)"
            )
        try:
            entry = weakref.ref(source)
        except TypeError:  # not weakref-able: hold strongly
            entry = source
        with self._lock:
            self._sources[prefix] = entry

    def unregister_source(self, prefix: str) -> None:
        with self._lock:
            self._sources.pop(prefix, None)

    def _resolve_source(self, entry):
        if isinstance(entry, weakref.ref):
            return entry()
        if callable(entry) and not hasattr(entry, "snapshot"):
            return entry()
        return entry

    def sources(self) -> dict[str, Any]:
        """Currently resolvable sources by prefix (dead refs skipped)."""
        with self._lock:
            entries = list(self._sources.items())
        out = {}
        for prefix, entry in entries:
            source = self._resolve_source(entry)
            if source is not None:
                out[prefix] = source
        return out

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        """Every instrument and live source flattened into one dict.

        Keys are ``name`` / ``name{label=value}`` for instruments and
        ``prefix.key`` for sources; values are plain scalars, ready for
        ``json.dumps``.
        """
        out: dict[str, float] = {}
        for instrument in self.instruments():
            out.update(instrument.snapshot())
        for prefix, source in self.sources().items():
            for key, value in source.snapshot().items():
                out[f"{prefix}.{key}"] = value
        return out

    def dump(self, include_sources: bool = True) -> dict:
        """Serializable, *mergeable* registry state — the telemetry wire
        format.

        Instruments are dumped losslessly (histograms with raw bucket
        counts); live stats sources are flattened to their scalar
        snapshots under ``"sources"``. :meth:`merge_dump` on another
        process's registry reconstructs counters by summation, keeps
        gauges per-origin, and folds histogram buckets exactly.
        """
        counters: dict[str, list] = {}
        gauges: dict[str, list] = {}
        histograms: dict[str, dict] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Counter):
                counters[instrument.name] = instrument.dump()
            elif isinstance(instrument, Gauge):
                gauges[instrument.name] = instrument.dump()
            elif isinstance(instrument, Histogram):
                histograms[instrument.name] = instrument.dump()
        payload = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        if include_sources:
            sources: dict[str, float] = {}
            for prefix, source in self.sources().items():
                for key, value in source.snapshot().items():
                    sources[f"{prefix}.{key}"] = value
            payload["sources"] = sources
        return payload

    def merge_dump(self, payload: dict, **extra_labels: Any) -> None:
        """Fold another registry's :meth:`dump` into this one.

        ``extra_labels`` (typically ``rank=<r>`` or ``shard=<s>``) are
        stamped onto every merged series so the origins stay separable —
        a :class:`Counter`'s cross-series ``total`` still reports the
        cluster-wide sum. Source scalars (cache hit rates, queue depths)
        are re-published as labelled gauges: they are point-in-time
        readings of a remote object, not mergeable streams.
        """
        for name, series in payload.get("counters", {}).items():
            self.counter(name).merge_dump(series, **extra_labels)
        for name, series in payload.get("gauges", {}).items():
            self.gauge(name).merge_dump(series, **extra_labels)
        for name, hist_payload in payload.get("histograms", {}).items():
            layout = hist_payload.get("layout")
            if layout:
                hist = self.histogram(
                    name,
                    min_value=float(layout[0]),
                    max_value=float(layout[1]),
                    buckets_per_decade=int(layout[2]),
                )
            else:
                hist = self.histogram(name)
            hist.merge_dump(hist_payload, **extra_labels)
        for key, value in payload.get("sources", {}).items():
            self.gauge(key).set(float(value), **extra_labels)

    def reset(self, include_sources: bool = False) -> None:
        """Zero every instrument; optionally reset the live sources too."""
        for instrument in self.instruments():
            instrument.reset()
        if include_sources:
            for source in self.sources().values():
                reset = getattr(source, "reset", None)
                if callable(reset):
                    reset()

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(instruments={len(self)}, "
            f"sources={sorted(self._sources)})"
        )
