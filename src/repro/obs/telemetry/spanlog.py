"""Per-rank span logs and coordinator-side trace assembly.

A worker cannot hand its spans back through a return value — the chaos
scenario is precisely that the worker dies mid-round. So each rank
streams its *finished* spans to an append-only JSONL ring file
(:class:`SpanLogWriter`), one self-contained record per span, flushed at
round boundaries. The failure mode a kill can leave behind is one
truncated trailing line, which :func:`read_span_log` silently skips —
every span flushed before the kill survives.

Record format (one JSON object per line)::

    {"trace_id": "...", "rank": "3", "span_id": "r3s17",
     "parent_id": "r3s16" | <coordinator span id>, "name": "worker.step",
     "start_s": ..., "end_s": ..., "attributes": {...}}

Ids are globally qualified (``r<rank>s<local id>``) so two ranks' span
ids never alias; a rank-root record's ``parent_id`` is the *coordinator's*
span id carried by the :class:`~repro.obs.telemetry.context.TraceContext`,
which is what lets :func:`assemble_trace` graft each rank's trees under
the exact coordinator span that launched the work.

The ring bound: a writer that has emitted more than ``2 × max_records``
lines compacts the file down to its newest ``max_records`` (dropped
records are counted) — a long-running worker's span log stays bounded
the same way :class:`~repro.obs.trace.Tracer` bounds its root FIFO.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ConfigError
from repro.obs.logs import get_logger
from repro.obs.telemetry.context import TraceContext, qualified_span_id
from repro.obs.trace import Span, Tracer

_LOG = get_logger("repro.obs.telemetry.spanlog")


class SpanLogWriter:
    """Append finished spans of one rank to a JSONL ring file.

    Parameters
    ----------
    path:
        The rank's span-log file (created on first flush).
    ctx:
        The propagated :class:`TraceContext`; its ``trace_id`` stamps
        every record and its ``parent_span_id`` becomes the parent of
        every rank-root span.
    rank:
        Origin rank, used to qualify span ids (``r<rank>s<id>``).
    max_records:
        Ring bound — the file is compacted to its newest ``max_records``
        lines once it exceeds twice that.
    """

    def __init__(
        self,
        path: str | Path,
        ctx: TraceContext,
        rank: int | str = 0,
        max_records: int = 4096,
    ) -> None:
        if max_records < 1:
            raise ConfigError(f"max_records must be >= 1, got {max_records}")
        self.path = Path(path)
        self.ctx = ctx
        self.rank = rank
        self.max_records = int(max_records)
        self.records_written = 0
        self.records_dropped = 0
        self._consumed_roots = 0
        self._lines_in_file = 0

    # ------------------------------------------------------------------ #

    def _record(self, span: Span) -> dict[str, Any]:
        parent = (
            qualified_span_id(self.rank, span.parent_id)
            if span.parent_id is not None
            else self.ctx.parent_span_id
        )
        attributes = dict(span.attributes)
        for key, value in self.ctx.labels:
            attributes.setdefault(key, value)
        return {
            "trace_id": self.ctx.trace_id,
            "rank": str(self.rank),
            "span_id": qualified_span_id(self.rank, span.span_id),
            "parent_id": parent,
            "name": span.name,
            "start_s": span.start_s,
            "end_s": span.end_s,
            "attributes": attributes,
        }

    def flush(self, tracer: Tracer) -> int:
        """Write every finished root not yet flushed; returns records
        written. Safe to call after every round — already-flushed roots
        are tracked (and roots the tracer dropped FIFO are skipped)."""
        roots = tracer.roots()
        start = max(self._consumed_roots - tracer.dropped, 0)
        fresh = roots[start:]
        if not fresh:
            return 0
        lines = []
        for root in fresh:
            for span in root.walk():
                lines.append(
                    json.dumps(self._record(span), default=float)
                )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._consumed_roots = tracer.dropped + len(roots)
        self.records_written += len(lines)
        self._lines_in_file += len(lines)
        if self._lines_in_file > 2 * self.max_records:
            self._compact()
        return len(lines)

    def _compact(self) -> None:
        """Rewrite the file keeping only the newest ``max_records`` lines."""
        kept = self.path.read_text(encoding="utf-8").splitlines()
        dropped = max(len(kept) - self.max_records, 0)
        if not dropped:
            return
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            "\n".join(kept[dropped:]) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)
        self.records_dropped += dropped
        self._lines_in_file = len(kept) - dropped

    def snapshot(self) -> dict[str, float]:
        """Flat counters (:class:`repro.obs.StatsSource`)."""
        return {
            "records_written": self.records_written,
            "records_dropped": self.records_dropped,
        }

    def reset(self) -> None:
        self.records_written = 0
        self.records_dropped = 0


def read_span_log(path: str | Path) -> list[dict[str, Any]]:
    """Parse one rank's JSONL span log, skipping corrupt lines.

    A worker killed mid-write leaves at most one truncated trailing
    line; any line that fails to parse (or is not a span record) is
    dropped with a debug log rather than failing the assembly.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            _LOG.debug("%s:%d: skipping corrupt span line", path, lineno)
            continue
        if not isinstance(record, dict) or "span_id" not in record:
            _LOG.debug("%s:%d: skipping non-span record", path, lineno)
            continue
        records.append(record)
    return records


def _spans_from_records(records: Iterable[dict]) -> tuple[list[Span], dict]:
    """Rebuild (in-rank trees, id→span index) from flat records.

    Records whose parent is another record in the batch are nested under
    it; the rest (rank roots, or orphans whose parent was lost to the
    ring bound) come back as roots.
    """
    by_id: dict[Any, Span] = {}
    for record in records:
        span = Span(
            record.get("name", "?"),
            record["span_id"],
            record.get("parent_id"),
            float(record.get("start_s") or 0.0),
            attributes=record.get("attributes") or {},
        )
        span.end_s = record.get("end_s")
        by_id[span.span_id] = span
    roots = []
    for span in by_id.values():
        parent = by_id.get(span.parent_id)
        if parent is not None and parent is not span:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots, by_id


def assemble_trace(
    root: Span,
    span_logs: Iterable[str | Path],
    trace_id: str | None = None,
) -> Span:
    """Stitch per-rank span logs into the coordinator's span tree.

    ``root`` is the coordinator-side span tree (typically the finished
    ``distributed.run`` root); each rank record whose ``parent_id``
    matches a span in that tree is grafted under it, rank-internal
    parentage is preserved, and records that name a coordinator span the
    tree does not contain fall back to attaching under ``root`` itself
    (labelled ``reattached=True``) — a trace is never silently dropped
    because its attach point aged out of the tracer FIFO.

    ``trace_id``, when given, filters the logs to one trace (a ring file
    may span several runs). Returns ``root``, mutated in place.
    """
    records: list[dict] = []
    for path in span_logs:
        records.extend(read_span_log(path))
    if trace_id is not None:
        records = [r for r in records if r.get("trace_id") == trace_id]
    if not records:
        return root

    coordinator_ids = {span.span_id: span for span in root.walk()}
    rank_roots, by_id = _spans_from_records(records)
    for span in rank_roots:
        anchor = coordinator_ids.get(span.parent_id)
        if anchor is None:
            span.attributes.setdefault("reattached", True)
            anchor = root
        span.parent_id = anchor.span_id
        anchor.children.append(span)
    return root
