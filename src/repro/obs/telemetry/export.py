"""Exporters: one unified snapshot, two wire formats.

Both exporters consume the flat ``snapshot()`` dict produced by
:class:`~repro.obs.MetricsRegistry` (and by extension
:class:`~repro.obs.telemetry.aggregate.ClusterMetrics`), whose keys look
like::

    serving.queue_wait_s{model=default}.p99   -> 0.0123
    rows_patched{rank=1}                      -> 42.0
    perf.operator_cache.hit_rate              -> 0.87

:func:`to_prometheus` renders the Prometheus text exposition format
(label blocks become real Prometheus labels, everything else is
sanitized into the metric name under a ``repro_`` namespace);
:func:`to_json` renders a self-describing JSON document. Both are pure
functions over the snapshot — exporting never touches live instruments,
so an exporter can run on a coordinator thread without perturbing the
hot path it is reporting on.

:func:`lint_prometheus` is the CI gate: it re-parses an exposition blob
against the grammar Prometheus itself enforces (metric-name regex,
escaped label values, float-parseable samples, ``# TYPE`` before first
sample) and returns the violations instead of raising, so the smoke
workflow can fail with all problems listed at once.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix stamped on every exported metric name.
NAMESPACE = "repro"


def parse_snapshot_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a flat snapshot key into (dotted name, labels).

    ``"queue_wait_s{model=a,shard=0}.p99"`` parses to
    ``("queue_wait_s.p99", {"model": "a", "shard": "0"})``; keys without
    a label block pass through with empty labels. A malformed label
    block is left inside the name (sanitization will neutralize it)
    rather than guessed at.
    """
    start = key.find("{")
    if start < 0:
        return key, {}
    end = key.find("}", start)
    if end < 0:
        return key, {}
    labels: dict[str, str] = {}
    block = key[start + 1 : end]
    for item in block.split(","):
        if "=" not in item:
            return key, {}
        k, v = item.split("=", 1)
        labels[k.strip()] = v.strip()
    return key[:start] + key[end + 1 :], labels


def _metric_name(dotted: str) -> str:
    """A dotted snapshot name as a valid namespaced Prometheus name."""
    name = _SANITIZE_RE.sub("_", dotted.strip("."))
    if not name or not _NAME_RE.match(name[0]):
        name = "_" + name
    return f"{NAMESPACE}_{name}"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(
    snapshot: Mapping[str, Any],
    extra_labels: Mapping[str, Any] | None = None,
) -> str:
    """Render a flat snapshot in Prometheus text exposition format.

    Every metric is emitted as an (untyped) gauge — the snapshot carries
    point-in-time scalars, and claiming ``counter`` semantics for keys
    that reset with the registry would corrupt rate() queries.
    ``extra_labels`` (e.g. ``job="bench_distributed"``) are stamped onto
    every sample; they lose to a sample's own labels on collision.
    """
    grouped: dict[str, list[tuple[dict[str, str], float]]] = {}
    for key in sorted(snapshot):
        value = snapshot[key]
        try:
            value = float(value)
        except (TypeError, ValueError):
            continue
        dotted, labels = parse_snapshot_key(key)
        if extra_labels:
            merged = {str(k): str(v) for k, v in extra_labels.items()}
            merged.update(labels)
            labels = merged
        labels = {
            _SANITIZE_RE.sub("_", k): v
            for k, v in labels.items()
            if _LABEL_NAME_RE.match(_SANITIZE_RE.sub("_", k))
        }
        grouped.setdefault(_metric_name(dotted), []).append((labels, value))

    lines: list[str] = []
    for name, samples in grouped.items():
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            if labels:
                inner = ",".join(
                    f'{k}="{_escape_label_value(v)}"'
                    for k, v in sorted(labels.items())
                )
                lines.append(f"{name}{{{inner}}} {value!r}")
            else:
                lines.append(f"{name} {value!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def lint_prometheus(text: str) -> list[str]:
    """Violations of the text exposition grammar (empty list = clean).

    Checks the properties a real Prometheus scraper enforces: metric and
    label names match their regexes, label values are quoted with valid
    escapes, each sample value parses as a float, and every sample's
    metric has a preceding ``# TYPE`` declaration.
    """
    problems: list[str] = []
    typed: set[str] = set()
    sample_re = re.compile(
        r"^(?P<name>[^\s{]+)(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$"
    )
    label_re = re.compile(
        r'^(?P<key>[^=]+)="(?P<val>(?:[^"\\]|\\.)*)"$'
    )
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        match = sample_re.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        if not _NAME_RE.match(name):
            problems.append(f"line {lineno}: invalid metric name {name!r}")
        if name not in typed:
            problems.append(f"line {lineno}: sample before # TYPE for {name!r}")
        labels = match.group("labels")
        if labels:
            for item in _split_label_block(labels):
                m = label_re.match(item)
                if m is None:
                    problems.append(
                        f"line {lineno}: malformed label {item!r}"
                    )
                    continue
                if not _LABEL_NAME_RE.match(m.group("key")):
                    problems.append(
                        f"line {lineno}: invalid label name {m.group('key')!r}"
                    )
        try:
            float(match.group("value"))
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric sample value "
                f"{match.group('value')!r}"
            )
    return problems


def _split_label_block(block: str) -> Iterable[str]:
    """Split ``k1="v1",k2="v,2"`` on commas outside quoted values."""
    items, depth, start = [], False, 0
    i = 0
    while i < len(block):
        ch = block[i]
        if ch == "\\" and depth:
            i += 2
            continue
        if ch == '"':
            depth = not depth
        elif ch == "," and not depth:
            items.append(block[start:i])
            start = i + 1
        i += 1
    tail = block[start:]
    if tail:
        items.append(tail)
    return items


def to_json(
    snapshot: Mapping[str, Any],
    meta: Mapping[str, Any] | None = None,
    indent: int | None = None,
) -> str:
    """Structured-JSON export: samples with parsed names and labels.

    The document shape::

        {"format": "repro.telemetry.v1", "meta": {...},
         "samples": [{"name": ..., "labels": {...}, "value": ...}, ...]}

    Non-numeric snapshot values are carried verbatim (the JSON side has
    no float-only constraint), so structured status strings survive.
    """
    samples = []
    for key in sorted(snapshot):
        dotted, labels = parse_snapshot_key(key)
        value = snapshot[key]
        try:
            value = float(value)
        except (TypeError, ValueError):
            pass
        samples.append({"name": dotted, "labels": labels, "value": value})
    document = {
        "format": "repro.telemetry.v1",
        "meta": dict(meta or {}),
        "samples": samples,
    }
    return json.dumps(document, indent=indent, default=float)
