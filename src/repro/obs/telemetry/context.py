"""Distributed trace propagation: the context that crosses processes.

A :class:`TraceContext` is the small, picklable token a coordinator mints
from its own active span and ships to every worker (inside the
``WorkerSpec``, a request header, or any other side channel). It carries
exactly three things:

* ``trace_id`` — one id for the whole cross-process trace;
* ``parent_span_id`` — the coordinator span the remote subtrees attach
  under when :func:`repro.obs.telemetry.assemble_trace` stitches them;
* ``labels`` — origin labels (``rank``, ``shard``, ``tenant``...) every
  remote span inherits.

The contract is deliberately one-directional: the coordinator *mints*,
workers only *extend* (:meth:`TraceContext.child`) — a worker can add its
rank label but can never rewrite the trace id or re-parent itself, so an
assembled tree is always rooted in the span that actually launched the
work.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (collision-safe across processes)."""
    return uuid.uuid4().hex[:16]


def qualified_span_id(rank: Any, span_id: Any) -> str:
    """Globally unique span id for a per-process span.

    Per-process :class:`~repro.obs.trace.Tracer` ids are small ints that
    collide across ranks; the wire format prefixes them with their
    origin (``"r3s17"``) so an assembled tree never aliases two spans.
    """
    return f"r{rank}s{span_id}"


@dataclass(frozen=True)
class TraceContext:
    """Picklable trace-propagation token (trace id, attach point, labels).

    Build one on the coordinator with :meth:`from_span` (or :meth:`root`
    when there is no live span to attach under), ship it to workers, and
    have each worker stamp its spans with :meth:`child`-extended labels.
    """

    trace_id: str
    parent_span_id: Any = None
    labels: tuple[tuple[str, str], ...] = ()

    @classmethod
    def root(cls, **labels: Any) -> "TraceContext":
        """A fresh context with no attach point (standalone trace)."""
        return cls(new_trace_id(), None, _label_items(labels))

    @classmethod
    def from_span(cls, span, **labels: Any) -> "TraceContext":
        """Mint a context whose remote subtrees attach under ``span``."""
        span_id = getattr(span, "span_id", None)
        if span_id is None:
            raise ConfigError(
                f"TraceContext.from_span needs a repro.obs.Span, got {span!r}"
            )
        return cls(new_trace_id(), span_id, _label_items(labels))

    def child(self, **labels: Any) -> "TraceContext":
        """This context with extra origin labels (rank/shard/pid...).

        Existing labels are kept; on collision the *existing* label wins
        — a worker extends the coordinator's context, it never rewrites
        it.
        """
        merged = dict(_label_items(labels))
        merged.update(dict(self.labels))
        return TraceContext(
            self.trace_id, self.parent_span_id, _label_items(merged)
        )

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def to_dict(self) -> dict[str, Any]:
        """JSON-suitable form (the pickle-free propagation path)."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "labels": dict(self.labels),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceContext":
        return cls(
            str(payload["trace_id"]),
            payload.get("parent_span_id"),
            _label_items(payload.get("labels") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceContext({self.trace_id!r}, parent={self.parent_span_id!r}, "
            f"labels={dict(self.labels)})"
        )


def _label_items(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def process_labels() -> dict[str, str]:
    """Default origin labels for the current process (pid)."""
    return {"pid": str(os.getpid())}
