"""Declarative SLO monitors: latency/error-budget rules over sliding windows.

A rule is one comparison written in the grammar::

    "p99 < 50ms"          # latency objective (any percentile p1..p99.9)
    "p50 <= 2s"           # units: ns / us / ms / s (default s)
    "error_rate < 1%"     # error-budget objective (fraction or %)

parsed by :func:`parse_rule` into an :class:`SloRule`, optionally scoped
to a label filter (``model="fraud"``, ``shard="2"``): a record only
counts against rules whose filter is a subset of the record's labels.

Evaluation happens over an N-second sliding window implemented as K
rotating time buckets, each holding a mergeable
:class:`~repro.utils.timer.LatencyHistogram` plus ok/error counts —
recording is O(1) and evaluation folds only K bucket states, so a
monitor can sit on the serving request path. Burn rate is reported per
rule: for error rules ``observed_rate / allowed_rate``, for latency
rules ``observed_percentile / threshold`` — a gauge crossing 1.0 is a
breach in progress.

Breaches are *edge-triggered*: the on-breach hook (typically
``ServingRuntime.trip_breaker`` pre-emptively opening the PR 5
:class:`~repro.resilience.breaker.CircuitBreaker`) fires once per
transition into violation, and again only after the rule has recovered.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Mapping

from repro.errors import ConfigError
from repro.obs.logs import get_logger
from repro.utils.concurrency import make_lock
from repro.utils.timer import LatencyHistogram

_LOG = get_logger("repro.obs.telemetry.slo")

_RULE_RE = re.compile(
    r"""^\s*
    (?P<metric>p\d+(?:\.\d+)?|error_rate)
    \s*(?P<op><=?)\s*
    (?P<value>\d+(?:\.\d+)?)\s*
    (?P<unit>ns|us|ms|s|%)?
    \s*$""",
    re.VERBOSE,
)

_UNIT_SCALE = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


class SloRule:
    """One parsed objective plus its label scope and breach hook."""

    def __init__(
        self,
        expr: str,
        metric: str,
        percentile: float | None,
        threshold: float,
        inclusive: bool,
        labels: Mapping[str, Any] | None = None,
        on_breach: Callable[["SloRule", float], Any] | None = None,
        min_samples: int = 1,
    ) -> None:
        self.expr = expr
        self.metric = metric  # "latency" | "error_rate"
        self.percentile = percentile
        self.threshold = threshold
        self.inclusive = inclusive
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self.on_breach = on_breach
        self.min_samples = int(min_samples)
        self.breached = False
        self.breach_count = 0

    def matches(self, labels: Mapping[str, str]) -> bool:
        """Whether a record's labels fall inside this rule's scope."""
        return all(labels.get(k) == v for k, v in self.labels.items())

    def violates(self, observed: float) -> bool:
        if self.inclusive:
            return observed > self.threshold
        return observed >= self.threshold

    def name(self) -> str:
        # ";"-joined scope: the name is embedded in snapshot label blocks
        # (`breached{rule=...}`), where a "," would split the block.
        scope = ";".join(f"{k}:{v}" for k, v in sorted(self.labels.items()))
        return f"{self.expr}[{scope}]" if scope else self.expr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SloRule({self.name()!r}, breached={self.breached})"


def parse_rule(
    expr: str,
    labels: Mapping[str, Any] | None = None,
    on_breach: Callable[[SloRule, float], Any] | None = None,
    min_samples: int = 1,
) -> SloRule:
    """Parse ``"p99 < 50ms"`` / ``"error_rate < 1%"`` into an :class:`SloRule`.

    Raises :class:`~repro.errors.ConfigError` on anything outside the
    grammar — an objective that silently parses to the wrong threshold
    is worse than no objective.
    """
    match = _RULE_RE.match(expr)
    if match is None:
        raise ConfigError(
            f"unparseable SLO rule {expr!r} "
            f"(grammar: 'p<q> < <value><ns|us|ms|s>' or "
            f"'error_rate < <value>[%]')"
        )
    metric = match.group("metric")
    value = float(match.group("value"))
    unit = match.group("unit")
    inclusive = match.group("op") == "<="
    if metric == "error_rate":
        if unit == "%":
            value /= 100.0
        elif unit is not None:
            raise ConfigError(
                f"error_rate threshold takes '%' or a bare fraction, "
                f"got unit {unit!r} in {expr!r}"
            )
        if not 0.0 <= value <= 1.0:
            raise ConfigError(
                f"error_rate threshold must land in [0, 1], got {value} "
                f"from {expr!r}"
            )
        return SloRule(
            expr, "error_rate", None, value, inclusive,
            labels, on_breach, min_samples,
        )
    percentile = float(metric[1:])
    if not 0.0 < percentile <= 100.0:
        raise ConfigError(f"percentile out of range in SLO rule {expr!r}")
    if unit == "%":
        raise ConfigError(f"latency threshold cannot carry '%' ({expr!r})")
    scale = _UNIT_SCALE[unit or "s"]
    return SloRule(
        expr, "latency", percentile, value * scale, inclusive,
        labels, on_breach, min_samples,
    )


class SlidingWindow:
    """K rotating time buckets of latency + outcome counts.

    Each bucket spans ``window_s / buckets`` seconds; recording writes
    the bucket owning *now* and expires buckets older than the window
    lazily, so there is no background thread. ``clock`` is injectable
    for deterministic tests.
    """

    def __init__(
        self,
        window_s: float = 60.0,
        buckets: int = 6,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_s <= 0 or buckets < 1:
            raise ConfigError(
                f"need window_s > 0 and buckets >= 1, got "
                f"({window_s}, {buckets})"
            )
        self.window_s = float(window_s)
        self.bucket_s = self.window_s / int(buckets)
        self.n_buckets = int(buckets)
        self._clock = clock
        # bucket index -> [epoch, LatencyHistogram, ok, err]
        self._buckets: list[list] = [
            [-1, None, 0, 0] for _ in range(self.n_buckets)
        ]
        self._lock = make_lock(True)

    def _slot(self) -> list:
        epoch = int(self._clock() / self.bucket_s)
        slot = self._buckets[epoch % self.n_buckets]
        if slot[0] != epoch:
            slot[0] = epoch
            slot[1] = None
            slot[2] = 0
            slot[3] = 0
        return slot

    def record(self, latency_s: float | None, ok: bool = True) -> None:
        with self._lock:
            slot = self._slot()
            if latency_s is not None:
                if slot[1] is None:
                    slot[1] = LatencyHistogram()
                slot[1].record(float(latency_s))
            if ok:
                slot[2] += 1
            else:
                slot[3] += 1

    def _live_slots(self) -> list[list]:
        newest = int(self._clock() / self.bucket_s)
        oldest = newest - self.n_buckets + 1
        return [s for s in self._buckets if oldest <= s[0] <= newest]

    def totals(self) -> tuple[int, int]:
        """(ok, err) across the live window."""
        with self._lock:
            slots = self._live_slots()
            return (
                sum(s[2] for s in slots),
                sum(s[3] for s in slots),
            )

    def histogram(self) -> LatencyHistogram:
        """Live-window latencies folded into one histogram (exact merge)."""
        merged = LatencyHistogram()
        with self._lock:
            for slot in self._live_slots():
                if slot[1] is not None:
                    merged.merge(slot[1])
        return merged

    def reset(self) -> None:
        with self._lock:
            for slot in self._buckets:
                slot[0] = -1
                slot[1] = None
                slot[2] = 0
                slot[3] = 0


class SloMonitor:
    """Routes request records to matching rules and evaluates breaches.

    One monitor guards one surface (a serving runtime, a shard router);
    every :meth:`record` call lands in the windows of all rules whose
    label filter matches, and :meth:`evaluate` (called inline after each
    record by default, or on a poll) recomputes each rule's observed
    value, burn rate, and breach edge. It is a
    :class:`repro.obs.StatsSource`: ``snapshot()`` exposes per-rule
    ``breached`` / ``burn_rate`` / ``observed`` gauges.
    """

    def __init__(
        self,
        rules: list[SloRule] | None = None,
        window_s: float = 60.0,
        buckets: int = 6,
        clock: Callable[[], float] = time.monotonic,
        evaluate_every: int = 16,
    ) -> None:
        self.window_s = window_s
        self.buckets = buckets
        self._clock = clock
        self.evaluate_every = max(1, int(evaluate_every))
        self._records = 0
        self._lock = make_lock(True)
        self._rules: list[tuple[SloRule, SlidingWindow]] = []
        self._burn: dict[str, float] = {}
        self._observed: dict[str, float] = {}
        for rule in rules or ():
            self.add_rule(rule)

    def add_rule(
        self,
        rule: SloRule | str,
        labels: Mapping[str, Any] | None = None,
        on_breach: Callable[[SloRule, float], Any] | None = None,
        min_samples: int = 1,
    ) -> SloRule:
        """Attach a rule (string expressions are parsed in place).

        ``on_breach`` applies to pre-built :class:`SloRule` objects too,
        replacing any hook set at construction.
        """
        if isinstance(rule, str):
            rule = parse_rule(rule, labels, on_breach, min_samples)
        elif on_breach is not None:
            rule.on_breach = on_breach
        window = SlidingWindow(self.window_s, self.buckets, self._clock)
        with self._lock:
            self._rules.append((rule, window))
        return rule

    @property
    def rules(self) -> list[SloRule]:
        with self._lock:
            return [rule for rule, _ in self._rules]

    def record(
        self,
        latency_s: float | None = None,
        ok: bool = True,
        **labels: Any,
    ) -> None:
        """Register one request outcome against every matching rule."""
        label_map = {str(k): str(v) for k, v in labels.items()}
        with self._lock:
            pairs = list(self._rules)
        for rule, window in pairs:
            if rule.matches(label_map):
                window.record(latency_s, ok)
        self._records += 1
        if self._records % self.evaluate_every == 0:
            self.evaluate()

    def evaluate(self) -> list[SloRule]:
        """Re-check every rule; returns rules newly entering breach.

        Edge-triggered: a rule already in breach does not re-fire its
        hook; it must first recover (observed back under threshold).
        """
        newly_breached: list[SloRule] = []
        with self._lock:
            pairs = list(self._rules)
        for rule, window in pairs:
            ok, err = window.totals()
            total = ok + err
            if rule.metric == "error_rate":
                if total < rule.min_samples:
                    continue
                observed = err / total if total else 0.0
                burn = (
                    observed / rule.threshold
                    if rule.threshold > 0
                    else (0.0 if observed == 0 else float("inf"))
                )
            else:
                hist = window.histogram()
                if hist.count < rule.min_samples:
                    continue
                observed = hist.percentile(rule.percentile)
                burn = observed / rule.threshold if rule.threshold else 0.0
            self._observed[rule.name()] = observed
            self._burn[rule.name()] = burn
            violating = rule.violates(observed)
            if violating and not rule.breached:
                rule.breached = True
                rule.breach_count += 1
                newly_breached.append(rule)
                _LOG.warning(
                    "SLO breach: %s observed=%.6g threshold=%.6g",
                    rule.name(), observed, rule.threshold,
                )
                if rule.on_breach is not None:
                    try:
                        rule.on_breach(rule, observed)
                    except Exception:  # noqa: BLE001 - hook must not kill serving
                        _LOG.exception(
                            "SLO on_breach hook failed for %s", rule.name()
                        )
            elif not violating and rule.breached:
                rule.breached = False
                _LOG.info("SLO recovered: %s", rule.name())
        return newly_breached

    def burn_rate(self, rule: SloRule | str) -> float:
        name = rule.name() if isinstance(rule, SloRule) else rule
        return self._burn.get(name, 0.0)

    # ------------------------------------------------------------------ #
    # StatsSource protocol
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        self.evaluate()
        out: dict[str, float] = {"rules": float(len(self._rules))}
        for rule, _ in self._rules:
            name = rule.name()
            out[f"breached{{rule={name}}}"] = float(rule.breached)
            out[f"breach_count{{rule={name}}}"] = float(rule.breach_count)
            out[f"burn_rate{{rule={name}}}"] = self._burn.get(name, 0.0)
            out[f"observed{{rule={name}}}"] = self._observed.get(name, 0.0)
        return out

    def reset(self) -> None:
        with self._lock:
            for rule, window in self._rules:
                rule.breached = False
                rule.breach_count = 0
                window.reset()
            self._burn.clear()
            self._observed.clear()
            self._records = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SloMonitor(rules={len(self._rules)}, "
            f"breached={sum(r.breached for r in self.rules)})"
        )
