"""Cross-process telemetry plane: traces, rank metrics, exporters, SLOs.

Everything in-process observability (:mod:`repro.obs`) measures stops at
a process boundary; this subpackage is the part that crosses it:

* :mod:`~repro.obs.telemetry.context` — the picklable
  :class:`TraceContext` a coordinator ships to workers so per-rank span
  trees stitch into one trace;
* :mod:`~repro.obs.telemetry.spanlog` — per-rank JSONL span rings
  (:class:`SpanLogWriter`) and coordinator-side :func:`assemble_trace`;
* :mod:`~repro.obs.telemetry.aggregate` — kill-safe shared-memory
  metrics publication (:func:`publish_blob` / :func:`read_blob`) and the
  :class:`ClusterMetrics` merged view;
* :mod:`~repro.obs.telemetry.export` — Prometheus text exposition and
  structured-JSON exporters (+ the CI :func:`lint_prometheus` gate);
* :mod:`~repro.obs.telemetry.slo` — declarative latency / error-budget
  rules over sliding windows with burn-rate gauges and breach hooks.

The subpackage is imported explicitly (``import repro.obs.telemetry``);
:mod:`repro.obs` deliberately does not pull it in at import time so the
single ``OBS.enabled`` hot-path check stays the only cost a process that
never exports telemetry ever pays.
"""

from repro.obs.telemetry.aggregate import (
    META_CELLS,
    METRICS_SEGMENT_BYTES,
    ClusterMetrics,
    decode_payload,
    encode_registry,
    publish_blob,
    read_blob,
)
from repro.obs.telemetry.context import (
    TraceContext,
    new_trace_id,
    process_labels,
    qualified_span_id,
)
from repro.obs.telemetry.export import (
    lint_prometheus,
    parse_snapshot_key,
    to_json,
    to_prometheus,
)
from repro.obs.telemetry.slo import (
    SlidingWindow,
    SloMonitor,
    SloRule,
    parse_rule,
)
from repro.obs.telemetry.spanlog import (
    SpanLogWriter,
    assemble_trace,
    read_span_log,
)

__all__ = [
    "META_CELLS",
    "METRICS_SEGMENT_BYTES",
    "ClusterMetrics",
    "SlidingWindow",
    "SloMonitor",
    "SloRule",
    "SpanLogWriter",
    "TraceContext",
    "assemble_trace",
    "decode_payload",
    "encode_registry",
    "lint_prometheus",
    "new_trace_id",
    "parse_rule",
    "parse_snapshot_key",
    "process_labels",
    "publish_blob",
    "qualified_span_id",
    "read_blob",
    "read_span_log",
    "to_json",
    "to_prometheus",
]
