"""Rank-aggregated metrics over the kill-safe shared-memory control plane.

Each worker owns one preallocated ``uint8`` payload segment plus an
``int64[2]`` meta cell ``(seq, length)`` published by the coordinator's
:class:`~repro.distributed.shm.ShmArena`. Publication follows the same
round-cell protocol as the distributed parameter plane: the writer fills
the payload *first* and advances ``seq`` *last*, so the only artefact a
killed writer can leave behind is an un-advanced cell — the coordinator
still reads the newest *complete* snapshot the rank ever published,
which is exactly the "counters survive a chaos kill" property the
telemetry tests pin down.

The payload is the JSON encoding of
:meth:`repro.obs.MetricsRegistry.dump` — counters and gauges per series,
histograms as raw log-bucket counts — so the coordinator-side
:class:`ClusterMetrics` merges them *exactly*: cluster p99 comes from
merged buckets, never from averaged per-rank percentiles.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry

_LOG = get_logger("repro.obs.telemetry.aggregate")

#: Default per-rank metrics segment size; a registry dump of a few
#: hundred series fits comfortably (an overflowing dump is dropped and
#: counted, never truncated to a torn payload).
METRICS_SEGMENT_BYTES = 1 << 16

#: Meta cell layout: ``meta[0]`` = sequence number (written last),
#: ``meta[1]`` = payload byte length.
META_CELLS = 2


def encode_registry(registry: MetricsRegistry, **extra: Any) -> bytes:
    """A registry dump (plus free-form ``extra`` keys) as JSON bytes."""
    payload = registry.dump()
    payload.update(extra)
    return json.dumps(payload, default=float).encode("utf-8")


def decode_payload(blob: bytes) -> dict | None:
    """Parse a published payload; ``None`` when torn/corrupt (logged)."""
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        _LOG.debug("dropping corrupt metrics payload (%d bytes)", len(blob))
        return None
    return payload if isinstance(payload, dict) else None


def publish_blob(
    buf: np.ndarray, meta: np.ndarray, payload: bytes, seq: int
) -> bool:
    """Write ``payload`` into the shared cell, payload-first seq-last.

    Returns ``False`` (without touching the cell) when the payload does
    not fit — a reader never observes a truncated snapshot, only the
    previous complete one.
    """
    data = np.frombuffer(payload, dtype=np.uint8)
    if data.size > buf.size:
        _LOG.warning(
            "metrics payload of %d bytes exceeds the %d-byte segment; "
            "keeping the previous snapshot", data.size, buf.size,
        )
        return False
    buf[: data.size] = data
    meta[1] = data.size
    meta[0] = seq  # publish last
    return True


def read_blob(buf: np.ndarray, meta: np.ndarray) -> tuple[int, bytes | None]:
    """Read the newest published payload; ``(seq, None)`` when empty.

    Tear detection: the sequence cell is read before and after copying
    the payload; on a mismatch (the writer raced us) the read retries,
    settling within a few iterations because publications are per-round.
    """
    for _ in range(8):
        seq = int(meta[0])
        if seq < 0:
            return seq, None
        length = int(meta[1])
        if not 0 <= length <= buf.size:
            return seq, None
        blob = bytes(buf[:length])
        if int(meta[0]) == seq:
            return seq, blob
    return int(meta[0]), None


class ClusterMetrics:
    """Coordinator-side merged view of per-rank registry dumps.

    :meth:`ingest` keeps each rank's newest payload (by sequence
    number); :meth:`merged` folds them into one fresh
    :class:`~repro.obs.MetricsRegistry` with every series re-labelled
    ``rank=<r>``, so counters sum cluster-wide (``Counter.total``),
    histograms merge exactly, and gauges stay attributable. The object
    is itself a :class:`repro.obs.StatsSource` — register it once and
    the coordinator's ``snapshot()`` becomes the single pane of glass.

    Payloads outlive their rank by design: a chaos-killed worker's last
    published counters stay in the merged view (flagged by the
    ``cluster.ranks_live`` gauge dropping below ``cluster.ranks_seen``).
    """

    def __init__(self) -> None:
        self._payloads: dict[str, dict] = {}
        self._seqs: dict[str, int] = {}
        self._live: dict[str, bool] = {}

    def ingest(
        self, rank: int | str, payload: dict, seq: int = 0, live: bool = True
    ) -> bool:
        """Keep ``payload`` as rank's newest snapshot (stale seqs are
        ignored); returns whether it replaced the held one."""
        if not isinstance(payload, dict):
            raise ConfigError(
                f"rank payload must be a dict, got {type(payload).__name__}"
            )
        key = str(rank)
        if key in self._seqs and seq < self._seqs[key]:
            return False
        self._payloads[key] = payload
        self._seqs[key] = int(seq)
        self._live[key] = bool(live)
        return True

    def mark_dead(self, rank: int | str) -> None:
        """Record that a rank is gone; its last payload is retained."""
        self._live[str(rank)] = False

    @property
    def ranks(self) -> list[str]:
        return sorted(self._payloads)

    def payload(self, rank: int | str) -> dict | None:
        return self._payloads.get(str(rank))

    def payloads(self) -> dict[str, dict]:
        """Newest payload per rank (for artifact embedding)."""
        return dict(self._payloads)

    def merged(self) -> MetricsRegistry:
        """One fresh registry holding every rank's series, rank-labelled."""
        registry = MetricsRegistry()
        for rank in self.ranks:
            registry.merge_dump(self._payloads[rank], rank=rank)
        return registry

    # ------------------------------------------------------------------ #
    # StatsSource protocol
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, float]:
        out = {
            "ranks_seen": float(len(self._payloads)),
            "ranks_live": float(sum(1 for v in self._live.values() if v)),
        }
        out.update(self.merged().snapshot())
        return out

    def reset(self) -> None:
        self._payloads.clear()
        self._seqs.clear()
        self._live.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterMetrics(ranks={self.ranks}, "
            f"live={sum(1 for v in self._live.values() if v)})"
        )
