"""repro.obs — unified tracing, metrics, and logging for the whole pipeline.

The tutorial's thesis is that scalable-GNN cost lives in the
graph-data-management stages — propagation precompute, batch assembly,
cache reuse, request-time inference. This subpackage is how those costs
become *visible* through one substrate instead of scattered ad-hoc
channels:

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span`: nested timed
  regions with attributes, JSON export, and a text tree view.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments plus
  registered :class:`StatsSource` adapters, flattened by one
  ``snapshot()`` call.
* :mod:`repro.obs.sources` — the uniform ``snapshot()/reset()`` protocol
  spoken by every cache, queue, and histogram in the library.
* :mod:`repro.obs.logs` — ``repro.*`` logger hierarchy helpers.
* :mod:`repro.obs.telemetry` — the cross-process plane: distributed
  trace propagation, rank-aggregated metrics over shared memory,
  Prometheus/JSON exporters, and SLO monitors (loaded lazily — see
  below).
* :mod:`repro.obs.profile` — a sampling profiler aggregating SpMM /
  halo-exchange stacks into a flamegraph-style tree (lazy too).

Everything is off by default. :func:`configure` flips the process-global
switch; instrumented hot paths guard on a **single attribute check**
(``OBS.enabled``) so the disabled-mode overhead is one pointer load per
instrumented region (benchmark E30 bounds it under 2% on the E28
propagation workload):

>>> from repro import obs
>>> obs.configure(enabled=True)
False
>>> with obs.span("stage", n_nodes=100) as sp:
...     _ = sp.set(nnz=400)
>>> obs.get_tracer().roots()[0].name
'stage'
>>> obs.configure(enabled=False)
True
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.obs.logs import ROOT_LOGGER_NAME, get_logger, setup_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sources import StatsSource, cache_stats_dict
from repro.obs.trace import NULL_SPAN, NullSpan, Span, Tracer


class _ObsState:
    """Process-global observability state; ``OBS`` is its only instance.

    Hot paths cache the module-level ``OBS`` reference and branch on
    ``OBS.enabled`` — :func:`configure` mutates this object in place, so
    the binding never goes stale.
    """

    __slots__ = ("enabled", "tracer", "registry")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.registry = MetricsRegistry()


OBS = _ObsState()

_defaults_registered = False


def _register_default_sources(registry: MetricsRegistry) -> None:
    """Attach the process-default perf caches as snapshot providers.

    Providers (zero-arg callables) rather than objects, so swapping the
    default cache/engine via :func:`repro.perf.set_default_cache` is
    reflected in the next snapshot. Imported lazily — :mod:`repro.perf`
    imports this package for its hot-path guards.
    """
    from repro.perf import (
        get_default_arena,
        get_default_cache,
        get_default_engine,
    )

    registry.register_source("perf.operator_cache", get_default_cache)
    registry.register_source("perf.propagation", get_default_engine)
    registry.register_source("perf.arena", get_default_arena)


def configure(
    enabled: bool | None = None,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    register_default_sources: bool = True,
) -> bool:
    """Reconfigure the process-global observability state.

    Any argument left ``None`` keeps its current value. Returns the
    *previous* enabled flag so callers can restore it. When
    ``register_default_sources`` is true the default operator cache and
    propagation engine are (re-)attached to the active registry, so a
    bare ``configure(enabled=True)`` already yields cache hit rates in
    ``get_registry().snapshot()``.
    """
    global _defaults_registered
    previous = OBS.enabled
    if tracer is not None:
        if not isinstance(tracer, Tracer):
            raise TypeError("configure expects a repro.obs.Tracer")
        OBS.tracer = tracer
    if registry is not None:
        if not isinstance(registry, MetricsRegistry):
            raise TypeError("configure expects a repro.obs.MetricsRegistry")
        OBS.registry = registry
        _defaults_registered = False
    if enabled is not None:
        OBS.enabled = bool(enabled)
    if register_default_sources and not _defaults_registered:
        _register_default_sources(OBS.registry)
        _defaults_registered = True
    return previous


def enabled() -> bool:
    """Whether observability is currently on."""
    return OBS.enabled


def get_tracer() -> Tracer:
    """The process-global tracer (collects spans only while enabled)."""
    return OBS.tracer


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry (default sources attached)."""
    global _defaults_registered
    if not _defaults_registered:
        _register_default_sources(OBS.registry)
        _defaults_registered = True
    return OBS.registry


def register_source(prefix: str, source) -> None:
    """Attach a stats source to the global registry under ``prefix``."""
    OBS.registry.register_source(prefix, source)


def span(name: str, **attributes: Any):
    """A span on the global tracer, or the shared no-op when disabled.

    The convenience entry point for warm-but-not-scorching paths::

        with obs.span("train.stage.precompute") as sp:
            out = fn()
            sp.set(rows=len(out))

    Hot kernels should instead guard explicitly on ``OBS.enabled`` so the
    disabled cost stays at one attribute check.
    """
    if not OBS.enabled:
        return NULL_SPAN
    return OBS.tracer.span(name, **attributes)


def trace(name: str | Callable | None = None, **attributes: Any):
    """Decorator tracing calls through the global tracer when enabled.

    Usable bare (``@obs.trace``) or parameterized
    (``@obs.trace("serving.batch", kind="gcn")``); the span name defaults
    to the function's qualified name. The enabled check happens per call,
    so decorated functions stay no-op-cheap while observability is off.
    """

    def decorate(fn: Callable):
        label = fn.__qualname__ if name is None or callable(name) else name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return fn(*args, **kwargs)
            with OBS.tracer.span(label, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name):
        return decorate(name)
    return decorate


def reset() -> None:
    """Clear the global tracer and zero the registry's instruments."""
    OBS.tracer.reset()
    OBS.registry.reset()


# Lazy attributes (PEP 562): the telemetry plane and the profiler are
# sizeable and pull in numpy/json machinery a tracing-only process never
# needs, so they materialize on first attribute access instead of at
# `import repro.obs` time — keeping the disabled-path cost at the single
# OBS.enabled check E30 bounds.
_LAZY_ATTRS = {
    "telemetry": ("repro.obs.telemetry", None),
    "profile": ("repro.obs.profile", None),
    "SamplingProfiler": ("repro.obs.profile", "SamplingProfiler"),
    "TraceContext": ("repro.obs.telemetry", "TraceContext"),
    "SloMonitor": ("repro.obs.telemetry", "SloMonitor"),
    "ClusterMetrics": ("repro.obs.telemetry", "ClusterMetrics"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    return module if attr is None else getattr(module, attr)


__all__ = [
    "OBS",
    "configure",
    "enabled",
    "get_tracer",
    "get_registry",
    "register_source",
    "span",
    "trace",
    "reset",
    "Tracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsSource",
    "cache_stats_dict",
    "setup_logging",
    "get_logger",
    "ROOT_LOGGER_NAME",
    # lazy (PEP 562)
    "telemetry",
    "profile",
    "SamplingProfiler",
    "TraceContext",
    "SloMonitor",
    "ClusterMetrics",
]
