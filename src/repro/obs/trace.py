"""Nested-span tracing: the time-attribution pillar of :mod:`repro.obs`.

A :class:`Span` is one timed region of the pipeline — a serving request, a
training epoch, one hop of SpMM — with monotonic start/end timestamps,
parent/child links, and free-form attributes (``n_nodes``, ``nnz``,
``hops``, cache hit/miss, ...). A :class:`Tracer` maintains the active
span stack, collects finished root spans, and can export them as JSON
(:meth:`Tracer.export_json`) or render them as an indented text tree
(:meth:`Tracer.render`) — the flame-view of where graph-data-management
time actually goes.

Spans are context managers (``with tracer.span("stage"): ...``) and the
:meth:`Tracer.trace` decorator wraps whole functions. The module is
dependency-free and never consults the global on/off switch — gating
lives in :mod:`repro.obs` so this layer stays directly testable.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from typing import Any, Callable, Iterator


class Span:
    """One timed, attributed region with parent/child links.

    Spans are created by :meth:`Tracer.span`; entering one is optional
    (timing starts at creation), exiting finishes it and pops it off the
    tracer's active stack. Attributes are free-form JSON-suitable values
    set at creation or via :meth:`set`.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start_s", "end_s",
        "attributes", "children", "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start_s: float,
        attributes: dict[str, Any] | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.name = str(name)
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: float | None = None
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.children: list[Span] = []
        self._tracer = tracer

    # ------------------------------------------------------------------ #

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer.finish(self)
        return False

    # ------------------------------------------------------------------ #

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """JSON-suitable nested representation of the subtree."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        """Rebuild a finished span tree from :meth:`to_dict` output."""
        span = cls(
            payload["name"],
            int(payload["span_id"]),
            payload.get("parent_id"),
            float(payload["start_s"]),
            attributes=payload.get("attributes") or {},
        )
        span.end_s = payload.get("end_s")
        span.children = [cls.from_dict(c) for c in payload.get("children", ())]
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration_s:.2e}s" if self.finished else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class NullSpan:
    """Shared no-op stand-in returned by :func:`repro.obs.span` when
    observability is disabled: entering, exiting, and :meth:`set` all do
    nothing, and it is falsy so callers can skip attribute computation
    with ``if sp: sp.set(...)``."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullSpan()"


NULL_SPAN = NullSpan()


def _format_duration(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


class Tracer:
    """Span factory + collector with a bounded list of finished roots.

    The active span stack is *per-thread* (``threading.local``): each
    serving worker nests its own spans without seeing another worker's
    parents, so concurrent requests produce independent root trees. The
    finished-roots list and the id counter are shared across threads and
    guarded by a lock.

    Parameters
    ----------
    max_roots:
        Finished root spans kept; older roots are dropped FIFO (the
        ``dropped`` counter records how many) so long-running processes
        never grow unboundedly.
    clock:
        Injectable monotonic clock (seconds) for deterministic tests.
    """

    def __init__(
        self,
        max_roots: int = 256,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_roots < 1:
            raise ValueError(f"max_roots must be >= 1, got {max_roots}")
        self.max_roots = int(max_roots)
        self._clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._next_id = 0
        self.dropped = 0

    def _thread_stack(self) -> list[Span]:
        """This thread's active span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span as a child of this thread's active span."""
        stack = self._thread_stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name,
            span_id,
            None if parent is None else parent.span_id,
            self._clock(),
            attributes=attributes,
            tracer=self,
        )
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close ``span`` (and any forgotten deeper spans still open)."""
        now = self._clock()
        stack = self._thread_stack()
        while stack:
            top = stack.pop()
            if top.end_s is None:
                top.end_s = now
            if top is span:
                break
        if span.parent_id is None:
            with self._lock:
                self._roots.append(span)
                if len(self._roots) > self.max_roots:
                    del self._roots[0]
                    self.dropped += 1

    def trace(self, name: str | None = None, **attributes: Any):
        """Decorator tracing every call of the wrapped function."""

        def decorate(fn: Callable):
            label = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(label, **attributes):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def active(self) -> Span | None:
        """The innermost span open *on the calling thread*, if any."""
        stack = self._thread_stack()
        return stack[-1] if stack else None

    def roots(self) -> list[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def spans(self) -> Iterator[Span]:
        """Every finished span, depth-first across roots."""
        for root in self.roots():
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """Every finished span whose name matches exactly."""
        return [s for s in self.spans() if s.name == name]

    def max_depth(self) -> int:
        """Deepest nesting level across finished roots (root = 1)."""

        def depth(span: Span) -> int:
            return 1 + max((depth(c) for c in span.children), default=0)

        return max((depth(r) for r in self.roots()), default=0)

    def reset(self) -> None:
        """Drop finished roots, abandon the calling thread's open spans,
        zero the counters. Spans open on *other* threads stay open —
        their stacks are thread-local and unreachable from here; they
        will finish into the (now empty) roots list as usual."""
        self._thread_stack().clear()
        with self._lock:
            self._roots.clear()
            self._next_id = 0
            self.dropped = 0

    # ------------------------------------------------------------------ #
    # Export / render
    # ------------------------------------------------------------------ #

    def to_dicts(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self.roots()]

    def export_json(self, indent: int | None = None) -> str:
        """Finished roots as a JSON array of nested span dicts."""
        return json.dumps(self.to_dicts(), indent=indent, default=float)

    @staticmethod
    def import_json(text: str) -> list[Span]:
        """Rebuild span trees exported by :meth:`export_json`."""
        return [Span.from_dict(d) for d in json.loads(text)]

    def render(self, max_depth: int | None = None) -> str:
        """Indented text tree of finished roots with durations and attrs.

        The poor man's flame graph: one line per span, children indented
        under their parent, attributes appended ``key=value``.
        """
        lines: list[str] = []

        def emit(span: Span, prefix: str, is_last: bool, depth: int) -> None:
            if max_depth is not None and depth > max_depth:
                return
            connector = "" if depth == 1 else ("`- " if is_last else "|- ")
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items())
            )
            label = f"{prefix}{connector}{span.name}"
            lines.append(
                f"{label:<48} {_format_duration(span.duration_s):>8}"
                + (f"  {attrs}" if attrs else "")
            )
            child_prefix = prefix if depth == 1 else (
                prefix + ("   " if is_last else "|  ")
            )
            for i, child in enumerate(span.children):
                emit(child, child_prefix, i == len(span.children) - 1, depth + 1)

        for root in self.roots():
            emit(root, "", True, 1)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._roots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(roots={len(self._roots)}/{self.max_roots}, "
            f"open={len(self._thread_stack())}, dropped={self.dropped})"
        )
