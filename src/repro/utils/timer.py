"""Wall-clock timing helpers used by trainers, serving, and benchmarks.

:class:`Timer` accumulates elapsed time; :class:`LatencyHistogram` keeps a
mergeable log-bucketed distribution of durations for percentile reporting
(p50/p95/p99), the accounting primitive of the online-serving path.
"""

from __future__ import annotations

import math
import time
from typing import Iterable

from repro.utils.concurrency import NULL_LOCK, make_lock


class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the running interval and return its duration in seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        interval = time.perf_counter() - self._start
        self.elapsed += interval
        self._start = None
        return interval

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None


class LatencyHistogram:
    """Log-bucketed latency distribution with percentile queries and merging.

    Durations are recorded into geometrically spaced buckets spanning
    ``[min_latency, max_latency]`` seconds (values outside the range are
    clamped into the edge buckets), so memory stays constant no matter how
    many samples arrive and two histograms with the same layout can be
    merged exactly — the shape that lets per-worker serving stats be
    aggregated into fleet-wide p50/p95/p99.

    Percentiles are resolved to the upper edge of the bucket containing the
    requested rank, i.e. they are conservative (never under-report).

    Degenerate durations are well-defined: an exactly-zero duration (a
    coarse monotonic clock ticking twice inside its resolution) clamps
    into the lowest bucket, and non-finite values are rejected with a
    clear :class:`ValueError` instead of surfacing a math domain error
    from the bucket computation.

    Pass ``threadsafe=True`` when multiple threads record into the same
    histogram (the concurrent serving runtime does); the default stays
    lock-free so single-threaded callers pay nothing.
    """

    def __init__(
        self,
        min_latency: float = 1e-6,
        max_latency: float = 60.0,
        buckets_per_decade: int = 20,
        threadsafe: bool = False,
    ) -> None:
        if not 0.0 < min_latency < max_latency:
            raise ValueError(
                f"need 0 < min_latency < max_latency, got "
                f"({min_latency}, {max_latency})"
            )
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.min_latency = float(min_latency)
        self.max_latency = float(max_latency)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_latency / self.min_latency)
        self._n_buckets = max(1, math.ceil(decades * self.buckets_per_decade))
        self._growth = (self.max_latency / self.min_latency) ** (1.0 / self._n_buckets)
        self._counts = [0] * self._n_buckets
        self._lock = make_lock(threadsafe)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    # ------------------------------------------------------------------ #

    def _bucket(self, seconds: float) -> int:
        # <= (not <) so an exactly-zero duration clamps into the lowest
        # bucket instead of reaching math.log(0) below.
        if seconds <= self.min_latency:
            return 0
        if seconds >= self.max_latency:
            return self._n_buckets - 1
        idx = int(math.log(seconds / self.min_latency) / math.log(self._growth))
        return min(max(idx, 0), self._n_buckets - 1)

    def _bucket_upper(self, idx: int) -> float:
        return self.min_latency * self._growth ** (idx + 1)

    def record(self, seconds: float) -> None:
        """Record one duration (negative or non-finite values are rejected)."""
        seconds = float(seconds)
        if not math.isfinite(seconds) or seconds < 0:
            raise ValueError(f"latency must be finite and >= 0, got {seconds}")
        idx = self._bucket(seconds)
        if self._lock is None:
            # Inlined _record: this is the serving hot path, where an
            # extra call frame is measurable (E31's 5% bound).
            self._counts[idx] += 1
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds
        else:
            with self._lock:
                self._record(idx, seconds)

    def _record(self, idx: int, seconds: float) -> None:
        self._counts[idx] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def record_many(self, durations: Iterable[float]) -> None:
        """Record a batch of durations under one lock acquisition.

        The micro-batch serving path records one latency per request; a
        batch of 64 would otherwise pay 64 lock round-trips.
        """
        pairs = []
        for seconds in durations:
            seconds = float(seconds)
            if not math.isfinite(seconds) or seconds < 0:
                raise ValueError(
                    f"latency must be finite and >= 0, got {seconds}"
                )
            pairs.append((self._bucket(seconds), seconds))
        with self._lock or NULL_LOCK:
            for idx, seconds in pairs:
                self._record(idx, seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]); 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock or NULL_LOCK:
            if self.count == 0:
                return 0.0
            rank = math.ceil(q / 100.0 * self.count)
            seen = 0
            for idx, n in enumerate(self._counts):
                seen += n
                if seen >= rank:
                    if idx == self._n_buckets - 1:
                        # Overflow bucket: its edge under-reports clamped
                        # outliers, so answer with the exactly tracked max.
                        return float(self.max)
                    # Clamp the bucket edge by the exactly tracked extremes.
                    return float(
                        min(max(self._bucket_upper(idx), self.min), self.max)
                    )
            return float(self.max)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram (same layout only)."""
        if (
            other.min_latency != self.min_latency
            or other.max_latency != self.max_latency
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError("cannot merge histograms with different bucket layouts")
        with other._lock or NULL_LOCK:
            counts = list(other._counts)
            count, total = other.count, other.total
            low, high = other.min, other.max
        with self._lock or NULL_LOCK:
            for idx, n in enumerate(counts):
                self._counts[idx] += n
            self.count += count
            self.total += total
            self.min = min(self.min, low)
            self.max = max(self.max, high)
        return self

    def state(self) -> dict:
        """Serializable full state: layout + raw bucket counts + extremes.

        Unlike :meth:`summary` (derived percentiles), the state is
        *mergeable without loss*: two histograms with the same layout can
        be reconstructed on another process from their states and folded
        together with exactly the result an in-process :meth:`merge`
        would produce. This is the wire format of the cross-process
        telemetry plane (:mod:`repro.obs.telemetry`).
        """
        with self._lock or NULL_LOCK:
            return {
                "layout": [
                    self.min_latency, self.max_latency, self.buckets_per_decade,
                ],
                "counts": list(self._counts),
                "count": self.count,
                "total": self.total,
                # math.inf is not portable JSON; an empty histogram's
                # extremes are reconstructed from count == 0.
                "min": self.min if self.count else 0.0,
                "max": self.max,
            }

    def merge_state(self, state: dict) -> "LatencyHistogram":
        """Fold a :meth:`state` payload into this histogram (exact).

        The payload must carry the same bucket layout; a mismatch raises
        :class:`ValueError` just like :meth:`merge`.
        """
        layout = [
            float(state["layout"][0]),
            float(state["layout"][1]),
            int(state["layout"][2]),
        ]
        if layout != [self.min_latency, self.max_latency, self.buckets_per_decade]:
            raise ValueError(
                "cannot merge histogram state with a different bucket layout"
            )
        counts = [int(n) for n in state["counts"]]
        if len(counts) != self._n_buckets:
            raise ValueError(
                f"state carries {len(counts)} buckets, expected {self._n_buckets}"
            )
        count = int(state["count"])
        with self._lock or NULL_LOCK:
            for idx, n in enumerate(counts):
                self._counts[idx] += n
            self.count += count
            self.total += float(state["total"])
            if count:
                self.min = min(self.min, float(state["min"]))
                self.max = max(self.max, float(state["max"]))
        return self

    @classmethod
    def from_state(cls, state: dict, threadsafe: bool = False) -> "LatencyHistogram":
        """Reconstruct a histogram from a :meth:`state` payload."""
        min_latency, max_latency, buckets_per_decade = state["layout"]
        hist = cls(
            float(min_latency), float(max_latency), int(buckets_per_decade),
            threadsafe=threadsafe,
        )
        hist.merge_state(state)
        return hist

    def summary(self) -> dict[str, float]:
        """``{count, mean, min, max, p50, p95, p99}`` for reports."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": 0.0 if self.count == 0 else float(self.min),
            "max": float(self.max),
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def snapshot(self) -> dict[str, float]:
        """Alias of :meth:`summary` — the uniform
        :class:`repro.obs.StatsSource` protocol (``snapshot``/``reset``)
        shared with every cache in the library."""
        return self.summary()

    def reset(self) -> None:
        with self._lock or NULL_LOCK:
            self._counts = [0] * self._n_buckets
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = 0.0

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatencyHistogram(count={self.count}, p50={self.p50:.2e}, "
            f"p95={self.p95:.2e}, p99={self.p99:.2e})"
        )
