"""Wall-clock timing helper used by trainers and the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the running interval and return its duration in seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        interval = time.perf_counter() - self._start
        self.elapsed += interval
        self._start = None
        return interval

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None
