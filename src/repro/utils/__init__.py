"""Shared utilities: RNG handling, timers, concurrency primitives, and
argument validation."""

from repro.utils.concurrency import NULL_LOCK, NullLock, RWLock, make_lock
from repro.utils.rng import as_rng
from repro.utils.timer import LatencyHistogram, Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "as_rng",
    "Timer",
    "LatencyHistogram",
    "NullLock",
    "NULL_LOCK",
    "RWLock",
    "make_lock",
    "check_fraction",
    "check_positive",
    "check_probability",
]
