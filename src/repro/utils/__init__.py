"""Shared utilities: RNG handling, timers, and argument validation."""

from repro.utils.rng import as_rng
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "as_rng",
    "Timer",
    "check_fraction",
    "check_positive",
    "check_probability",
]
