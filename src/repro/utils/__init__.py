"""Shared utilities: RNG handling, timers, and argument validation."""

from repro.utils.rng import as_rng
from repro.utils.timer import LatencyHistogram, Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "as_rng",
    "Timer",
    "LatencyHistogram",
    "check_fraction",
    "check_positive",
    "check_probability",
]
