"""Argument validation helpers shared across the library.

All helpers raise :class:`repro.errors.ConfigError` with a message naming the
offending parameter, so user mistakes surface at the API boundary rather than
as obscure NumPy failures deep inside an algorithm.
"""

from __future__ import annotations

from repro.errors import ConfigError


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative when not strict)."""
    if strict and not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the half-open interval (0, 1]."""
    if not 0.0 < value <= 1.0:
        raise ConfigError(f"{name} must be in (0, 1], got {value!r}")
    return value


def check_int_range(name: str, value: int, low: int, high: int | None = None) -> int:
    """Validate that integer ``value`` is in ``[low, high]`` (high optional)."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    if value < low or (high is not None and value > high):
        bound = f"[{low}, {high}]" if high is not None else f">= {low}"
        raise ConfigError(f"{name} must be {bound}, got {value}")
    return value
