"""Deterministic random-number-generator plumbing.

Library code never touches NumPy's global RNG. Every stochastic routine
accepts a ``seed`` argument that may be ``None`` (fresh entropy), an integer
seed, or an existing :class:`numpy.random.Generator`, and normalises it
through :func:`as_rng`.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def as_rng(seed=None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` for a reproducible stream,
        or an existing ``Generator`` which is returned unchanged (so a caller
        can thread one stream through multiple routines).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by simulated distributed workers so that each worker owns a private
    stream whose draws do not depend on scheduling order.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
