"""Thread-safety primitives shared by the concurrent serving stack.

The library's caches, queues, and counters were written single-threaded;
:class:`repro.serving.runtime.ServingRuntime` runs them from a batcher
thread plus a worker pool. This module provides the uniform locking
pattern every shared-mutable component follows:

* :func:`make_lock` returns a :class:`threading.RLock` when a component
  is constructed ``threadsafe=True`` and ``None`` otherwise. Hot paths
  branch on ``if self._lock is None`` — a pointer test (~8ns) — so the
  single-threaded fast path never pays the ~190ns context-manager cost
  of an uncontended lock acquisition (benchmark E31 bounds the locked
  overhead itself under 5% on the serving path).
* Cold paths (snapshots, resets, invalidation) write
  ``with self._lock or NULL_LOCK:`` — :data:`NULL_LOCK` is a shared
  no-op context manager, so the code reads identically either way.
* :class:`RWLock` is a writer-preferring readers–writer lock for state
  with many concurrent readers and rare exclusive writers — the served
  hop stacks, which micro-batch workers gather from while streaming
  edge updates patch rows in place.
"""

from __future__ import annotations

import threading


class NullLock:
    """No-op stand-in for a lock: ``with``, ``acquire`` and ``release``
    all do nothing. Falsy, so ``self._lock or NULL_LOCK`` composes."""

    __slots__ = ()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return True

    def release(self) -> None:
        pass

    def __enter__(self) -> "NullLock":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullLock()"


NULL_LOCK = NullLock()


def make_lock(threadsafe: bool = True):
    """A reentrant lock, or ``None`` for the unlocked fast path.

    Returning ``None`` (rather than a no-op lock) is deliberate: a
    Python-level no-op context manager costs nearly as much as a real
    C-implemented lock, so overhead-free single-threaded operation
    requires hot paths to *branch*, not to enter a dummy lock.
    """
    return threading.RLock() if threadsafe else None


class _Guard:
    """Reusable context manager binding an acquire/release pair.

    Stateless (the lock itself holds all state), so one guard instance
    is safely shared across threads and re-entered concurrently.
    """

    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release) -> None:
        self._acquire = acquire
        self._release = release

    def __enter__(self) -> "_Guard":
        self._acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._release()
        return False


class RWLock:
    """Writer-preferring readers–writer lock (not reentrant).

    Any number of readers may hold the lock together; a writer holds it
    exclusively. Once a writer is waiting, new readers queue behind it,
    so a steady read stream cannot starve updates.

    Use the shared :attr:`reader` / :attr:`writer` guards::

        with lock.reader:   # concurrent with other readers
            rows = stack[nodes]
        with lock.writer:   # exclusive
            patch_stack(...)
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self.reader = _Guard(self.acquire_read, self.release_read)
        self.writer = _Guard(self.acquire_write, self.release_write)

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RWLock(readers={self._readers}, writer={self._writer_active}, "
            f"writers_waiting={self._writers_waiting})"
        )
