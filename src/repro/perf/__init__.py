"""Precomputation reuse: operator caching and shared chunked propagation.

The paper's data-management thesis is that scalable GNNs win by *reusing
precomputation*: decoupled models consume the same normalized-adjacency
operators and K-hop propagated features, so building them once and sharing
them across models dominates repeated construction. This subpackage makes
that reuse concrete:

* :mod:`repro.perf.fingerprint` — content hashing of immutable graphs and
  arrays, the cache keys.
* :mod:`repro.perf.operator_cache` — :class:`OperatorCache`, LRU-bounded
  memoization of adjacency / normalized adjacency / Laplacian /
  propagation operators (and their value-dtype variants) with hit/miss
  accounting.
* :mod:`repro.perf.kernels` — hand-rolled CSR SpMM kernels: zero-copy
  row walk, L2-tiled column blocking (:class:`SpmmPlan`), the fused
  normalize+propagate :class:`FusedOperator`, and reusable
  :class:`RowBand` decodes for multi-RHS row products.
* :mod:`repro.perf.arena` — :class:`BufferArena`, a shape/dtype-keyed
  pool of dense scratch buffers rented by the kernels and the serving
  batch workers.
* :mod:`repro.perf.propagation` — :class:`PropagationEngine`, row-chunked
  (bounded-memory) K-hop SpMM with memoized hop stacks, the shared
  ``propagate(graph, X, K, kind)`` entry point of every decoupled model;
  its ``chunked_spmm``/``rows_spmm`` dispatchers own the fault sites and
  route to the kernels.
"""

from repro.perf.arena import (
    BufferArena,
    get_default_arena,
    set_default_arena,
)
from repro.perf.fingerprint import array_fingerprint, graph_fingerprint
from repro.perf.kernels import (
    DEFAULT_L2_BUDGET,
    HAVE_SPARSETOOLS,
    FusedOperator,
    RowBand,
    SpmmPlan,
    blocked_spmm,
    get_fused_operator,
    kernel_supported,
)
from repro.perf.operator_cache import (
    OperatorCache,
    cached_adjacency,
    cached_laplacian,
    cached_normalized_adjacency,
    cached_propagation_matrix,
    get_default_cache,
    set_default_cache,
)
from repro.perf.propagation import (
    DEFAULT_CHUNK_ROWS,
    PropagationEngine,
    chunked_spmm,
    fused_spmm,
    get_default_engine,
    propagate,
    rows_spmm,
    rows_spmm_multi,
    set_default_engine,
)

__all__ = [
    "array_fingerprint",
    "graph_fingerprint",
    "OperatorCache",
    "get_default_cache",
    "set_default_cache",
    "cached_adjacency",
    "cached_normalized_adjacency",
    "cached_laplacian",
    "cached_propagation_matrix",
    "BufferArena",
    "get_default_arena",
    "set_default_arena",
    "SpmmPlan",
    "FusedOperator",
    "RowBand",
    "blocked_spmm",
    "get_fused_operator",
    "kernel_supported",
    "HAVE_SPARSETOOLS",
    "DEFAULT_L2_BUDGET",
    "PropagationEngine",
    "chunked_spmm",
    "fused_spmm",
    "rows_spmm",
    "rows_spmm_multi",
    "propagate",
    "get_default_engine",
    "set_default_engine",
    "DEFAULT_CHUNK_ROWS",
]
