"""Precomputation reuse: operator caching and shared chunked propagation.

The paper's data-management thesis is that scalable GNNs win by *reusing
precomputation*: decoupled models consume the same normalized-adjacency
operators and K-hop propagated features, so building them once and sharing
them across models dominates repeated construction. This subpackage makes
that reuse concrete:

* :mod:`repro.perf.fingerprint` — content hashing of immutable graphs and
  arrays, the cache keys.
* :mod:`repro.perf.operator_cache` — :class:`OperatorCache`, LRU-bounded
  memoization of adjacency / normalized adjacency / Laplacian /
  propagation operators with hit/miss accounting.
* :mod:`repro.perf.propagation` — :class:`PropagationEngine`, row-chunked
  (bounded-memory) K-hop SpMM with memoized hop stacks, the shared
  ``propagate(graph, X, K, kind)`` entry point of every decoupled model.
"""

from repro.perf.fingerprint import array_fingerprint, graph_fingerprint
from repro.perf.operator_cache import (
    OperatorCache,
    cached_adjacency,
    cached_laplacian,
    cached_normalized_adjacency,
    cached_propagation_matrix,
    get_default_cache,
    set_default_cache,
)
from repro.perf.propagation import (
    DEFAULT_CHUNK_ROWS,
    PropagationEngine,
    chunked_spmm,
    get_default_engine,
    propagate,
    rows_spmm,
    set_default_engine,
)

__all__ = [
    "array_fingerprint",
    "graph_fingerprint",
    "OperatorCache",
    "get_default_cache",
    "set_default_cache",
    "cached_adjacency",
    "cached_normalized_adjacency",
    "cached_laplacian",
    "cached_propagation_matrix",
    "PropagationEngine",
    "chunked_spmm",
    "rows_spmm",
    "propagate",
    "get_default_engine",
    "set_default_engine",
    "DEFAULT_CHUNK_ROWS",
]
