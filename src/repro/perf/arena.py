"""Preallocated buffer arena: rent/release dense scratch buffers.

The SpMM hot path allocates the same handful of dense shapes over and
over — per-hop outputs, the scaled-feature temporary of the fused
normalize+propagate kernel, the per-micro-batch hop-row gather of the
serving workers. Each ``np.empty`` of a tens-of-megabytes array is a
round trip through the allocator (and, for fresh pages, through the
kernel's zero-page machinery) on a path that is otherwise pure memory
bandwidth. :class:`BufferArena` keeps released buffers pooled by
``(shape, dtype)`` so steady-state loops reuse the same physical pages
instead of churning new ones.

Renting is explicit and the arena never tracks outstanding buffers: a
rented array is owned by the caller until (and unless) it is handed
back with :meth:`BufferArena.release`. Buffers escape the pool simply
by never being released — correct-by-default for results that outlive
the loop (e.g. memoized hop stacks). Rented buffers contain stale
bytes unless ``zero=True`` is requested.

The process-wide default arena (:func:`get_default_arena`) is
registered as an ``obs`` stats source, so reuse rates and resident
bytes show up in ``obs.get_registry().snapshot()`` next to the
operator-cache and propagation counters.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.errors import ConfigError
from repro.storage.feature_cache import CacheStats
from repro.utils.concurrency import NULL_LOCK, make_lock
from repro.utils.validation import check_int_range

DEFAULT_MAX_BYTES = 256 << 20  # 256 MiB of pooled (idle) buffers


class BufferArena:
    """Shape/dtype-keyed pool of reusable dense scratch buffers.

    Parameters
    ----------
    max_bytes:
        Upper bound on *idle* pooled bytes. A release that would exceed
        the bound discards the buffer instead of pooling it (counted in
        ``discards``), so the arena can never hold more than
        ``max_bytes`` of unused memory.
    per_key:
        Maximum pooled buffers per ``(shape, dtype)`` key — bounds the
        damage of a loop that releases many identical buffers before
        renting any back.
    threadsafe:
        Guard the pool with a lock (default) so serving workers and the
        training thread can share one arena. Pass ``False`` for a
        lock-free single-threaded arena.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        per_key: int = 4,
        threadsafe: bool = True,
    ) -> None:
        check_int_range("max_bytes", max_bytes, 0)
        check_int_range("per_key", per_key, 1)
        self.max_bytes = max_bytes
        self.per_key = per_key
        self._lock = make_lock(threadsafe)
        self._pool: dict[tuple, list[np.ndarray]] = {}
        self._pooled_bytes = 0
        self._rents = 0
        self._reuses = 0
        self._allocations = 0
        self._releases = 0
        self._discards = 0

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    # ------------------------------------------------------------------ #
    # Rent / release
    # ------------------------------------------------------------------ #

    def rent(self, shape, dtype=np.float64, zero: bool = False) -> np.ndarray:
        """A writable ``(shape, dtype)`` buffer — pooled if available.

        The buffer holds stale bytes from its previous life unless
        ``zero=True``. The caller owns it until :meth:`release`.
        """
        key = self._key(shape, dtype)
        buf = None
        with self._lock or NULL_LOCK:
            self._rents += 1
            bucket = self._pool.get(key)
            if bucket:
                buf = bucket.pop()
                self._pooled_bytes -= buf.nbytes
                self._reuses += 1
            else:
                self._allocations += 1
        if buf is None:
            buf = np.empty(key[0], dtype=np.dtype(dtype))
        if zero:
            buf.fill(0)
        return buf

    def release(self, *arrays: np.ndarray) -> None:
        """Hand buffers back to the pool for reuse.

        Only exact ``(shape, dtype)`` matches are ever re-rented, so any
        writable C-contiguous array may be released here, not just ones
        that were rented. Releasing a buffer the caller still reads or
        writes is a use-after-free bug — the next renter scribbles over
        it.
        """
        with self._lock or NULL_LOCK:
            for arr in arrays:
                self._releases += 1
                if (
                    not arr.flags.writeable
                    or not arr.flags.c_contiguous
                    or arr.base is not None
                    or self._pooled_bytes + arr.nbytes > self.max_bytes
                ):
                    self._discards += 1
                    continue
                bucket = self._pool.setdefault(self._key(arr.shape, arr.dtype), [])
                if len(bucket) >= self.per_key:
                    self._discards += 1
                    continue
                bucket.append(arr)
                self._pooled_bytes += arr.nbytes

    @contextmanager
    def borrow(self, shape, dtype=np.float64, zero: bool = False):
        """Context-managed :meth:`rent`; released on exit, even on error."""
        buf = self.rent(shape, dtype, zero=zero)
        try:
            yield buf
        finally:
            self.release(buf)

    # ------------------------------------------------------------------ #
    # Introspection / management
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> CacheStats:
        """Reuse accounting: hits = pool reuses, misses = fresh allocations."""
        with self._lock or NULL_LOCK:
            return CacheStats(self._reuses, self._allocations, self._discards)

    @property
    def nbytes(self) -> int:
        """Bytes currently held by idle pooled buffers."""
        with self._lock or NULL_LOCK:
            return self._pooled_bytes

    def snapshot(self) -> dict[str, float]:
        """Flat counter/rate dict (:class:`repro.obs.StatsSource`)."""
        with self._lock or NULL_LOCK:
            rents = self._rents
            reuses = self._reuses
            return {
                "rents": rents,
                "reuses": reuses,
                "allocations": self._allocations,
                "releases": self._releases,
                "discards": self._discards,
                "reuse_rate": reuses / rents if rents else 0.0,
                "pooled_buffers": sum(len(b) for b in self._pool.values()),
                "pooled_bytes": self._pooled_bytes,
            }

    def reset(self) -> None:
        """Zero the counters; pooled buffers stay resident
        (:meth:`clear` is the destructive variant)."""
        with self._lock or NULL_LOCK:
            self._rents = self._reuses = self._allocations = 0
            self._releases = self._discards = 0

    def clear(self) -> None:
        """Drop every pooled buffer and reset the counters."""
        with self._lock or NULL_LOCK:
            self._pool.clear()
            self._pooled_bytes = 0
            self._rents = self._reuses = self._allocations = 0
            self._releases = self._discards = 0

    def __len__(self) -> int:
        with self._lock or NULL_LOCK:
            return sum(len(b) for b in self._pool.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"BufferArena(pooled={len(self)}, bytes={self.nbytes}, "
            f"reuses={s.hits}, allocations={s.misses})"
        )


# --------------------------------------------------------------------- #
# Process-wide default arena
# --------------------------------------------------------------------- #

_default_arena = BufferArena()


def get_default_arena() -> BufferArena:
    """The process-wide arena shared by the kernels and serving workers."""
    return _default_arena


def set_default_arena(arena: BufferArena) -> BufferArena:
    """Swap the process-wide arena; returns the previous one."""
    global _default_arena
    if not isinstance(arena, BufferArena):
        raise ConfigError("set_default_arena expects a BufferArena")
    previous = _default_arena
    _default_arena = arena
    return previous
