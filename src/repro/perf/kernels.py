"""Hand-rolled CSR SpMM kernels for the propagation hot path.

Every trainer and the serving stack funnel through
``chunked_spmm``/``rows_spmm`` in :mod:`repro.perf.propagation`, and on
CPU that workload is memory-bound: the aggregate step streams the dense
right-hand side through cache far more often than it does arithmetic.
This module supplies the kernels the dispatchers in ``propagation``
select from — the dispatchers keep the fault-injection sites and
thread-safety semantics; everything here is pure computation.

* :func:`blocked_spmm` — ``operator @ dense`` driven directly off the
  CSR ``indptr/indices/data`` triple via ``scipy.sparse._sparsetools``.
  The row-chunked walk slices *views* of the index/data arrays (the
  legacy path materializes a fresh CSR sub-matrix per chunk — an
  allocation plus an index copy per 16k rows). When the dense operand
  overflows the L2 budget, a column-blocked :class:`SpmmPlan` tiles the
  multiply so each tile of ``dense`` stays cache-resident across every
  row that touches it.
* :class:`FusedOperator` — ``D^-1/2 A D^-1/2 @ X`` in one pass, the
  degree scaling applied on the fly, so the normalized operator of the
  common ``gcn``/``sym`` engines is never materialized.
* :class:`RowBand` — a decoded sub-CSR of selected rows whose index
  arithmetic is paid once and reused across right-hand sides
  (serving's dirty-row patching, multi-RHS batched ``rows_spmm``).

Both kernel layouts accumulate each output element in ascending column
order — exactly scipy's own order for a CSR with sorted indices — so
results are *bitwise identical* to ``operator @ dense``, not merely
close. Scratch buffers are rented from :mod:`repro.perf.arena` rather
than allocated per hop.

Kernels require a CSR operator with float32/float64 data matching the
dense operand's dtype; :func:`kernel_supported` is the dispatchers'
gate, and anything else falls back to the legacy scipy path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.perf.arena import BufferArena, get_default_arena
from repro.utils.validation import check_int_range

try:  # pragma: no cover - import guard
    from scipy.sparse import _sparsetools as _st

    HAVE_SPARSETOOLS = hasattr(_st, "csr_matvecs") and hasattr(_st, "csr_matvec")
except ImportError:  # pragma: no cover - scipy always ships it today
    _st = None
    HAVE_SPARSETOOLS = False

#: Dense-tile budget for column blocking. One tile of the dense operand
#: should survive in L2 across every operator row that references it.
DEFAULT_L2_BUDGET = 2 << 20  # 2 MiB

SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_INDEX_DTYPES = (np.dtype(np.int32), np.dtype(np.int64))


def kernel_supported(operator, dense: np.ndarray) -> bool:
    """Whether the hand-rolled kernels can run this operand pair.

    Requires sparsetools, an already-CSR operator with float32/float64
    data *matching* the dense dtype (mixed precision falls back — the
    kernels never silently upcast), int32/int64 indices whose dtype
    matches ``indptr``, and a 1-D or 2-D C-contiguous dense operand.
    """
    if not HAVE_SPARSETOOLS or not isinstance(operator, sp.csr_matrix):
        return False
    if operator.data.dtype not in SUPPORTED_DTYPES:
        return False
    if operator.indices.dtype not in _INDEX_DTYPES:
        return False
    if operator.indices.dtype != operator.indptr.dtype:
        return False
    dense = np.asarray(dense)
    return (
        dense.dtype == operator.data.dtype
        and dense.ndim in (1, 2)
        and dense.flags.c_contiguous
    )


def _accumulate_band(
    n_cols: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    start: int,
    stop: int,
    dense: np.ndarray,
    out_band: np.ndarray,
) -> None:
    """``out_band += operator[start:stop] @ dense`` without slicing the CSR.

    The only per-chunk allocation is the small rebased ``indptr`` window;
    ``indices``/``data`` are passed as zero-copy views. ``out_band`` must
    be a C-contiguous view of the output rows (the caller zero-fills it —
    sparsetools accumulates).
    """
    p0 = int(indptr[start])
    p1 = int(indptr[stop])
    local = indptr[start : stop + 1] - p0
    if local.dtype != indices.dtype:
        local = local.astype(indices.dtype)
    if dense.ndim == 1:
        _st.csr_matvec(
            stop - start, n_cols, local, indices[p0:p1], data[p0:p1],
            dense, out_band,
        )
    else:
        _st.csr_matvecs(
            stop - start, n_cols, dense.shape[1], local,
            indices[p0:p1], data[p0:p1],
            dense.reshape(-1), out_band.reshape(-1),
        )


class SpmmPlan:
    """Column-blocked tiling of a CSR operator for cache-resident SpMM.

    The operator's non-zeros are partitioned by column into tiles of
    ``col_block`` columns; each tile becomes its own sub-CSR whose
    column indices are rebased to the tile. :meth:`matmul` then
    accumulates ``out += A_tile @ dense[tile]`` tile by tile, so the
    ``col_block``-row slice of the dense operand is streamed through
    cache exactly once per tile instead of being randomly probed across
    the operator's full column range.

    Building a plan costs a stable ``argsort`` over the non-zeros plus a
    copy of ``indices``/``data`` — worth paying only for operators that
    are applied repeatedly (the dispatcher builds plans for frozen
    cache-owned operators only, via :func:`get_plan`).

    Tiles are accumulated in ascending column order and the stable sort
    preserves the in-row ordering, so for a sorted-indices CSR the
    per-element summation order — and therefore every output bit —
    matches ``operator @ dense``.
    """

    def __init__(self, operator: sp.csr_matrix, col_block: int) -> None:
        if not isinstance(operator, sp.csr_matrix):
            raise ConfigError("SpmmPlan requires a csr_matrix operator")
        if not operator.has_sorted_indices:
            raise ConfigError("SpmmPlan requires sorted CSR indices")
        check_int_range("col_block", col_block, 1)
        self.operator = operator  # strong ref: keeps id()-keyed caching valid
        self.col_block = int(col_block)
        n_rows, n_cols = operator.shape
        self.shape = (int(n_rows), int(n_cols))
        self.dtype = operator.data.dtype
        n_blocks = -(-n_cols // self.col_block) if n_cols else 0
        indptr, indices, data = operator.indptr, operator.indices, operator.data
        block_of = indices // self.col_block
        order = np.argsort(block_of, kind="stable")
        bounds = np.searchsorted(block_of[order], np.arange(n_blocks + 1))
        nnz_rows = np.repeat(
            np.arange(n_rows, dtype=np.int64), np.diff(indptr)
        )
        self._tiles: list[tuple] = []
        for b in range(n_blocks):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            if lo == hi:
                continue
            sel = order[lo:hi]
            counts = np.bincount(nnz_rows[sel], minlength=n_rows)
            tile_ptr = np.zeros(n_rows + 1, dtype=indptr.dtype)
            np.cumsum(counts, out=tile_ptr[1:])
            c0 = b * self.col_block
            c1 = min(c0 + self.col_block, n_cols)
            tile_idx = (indices[sel] - c0).astype(indices.dtype, copy=False)
            self._tiles.append((tile_ptr, tile_idx, data[sel], c0, c1))

    @property
    def nbytes(self) -> int:
        """Bytes held by the tiled copy of the operator."""
        return sum(p.nbytes + i.nbytes + d.nbytes for p, i, d, _, _ in self._tiles)

    def matmul(self, dense: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Accumulate ``operator @ dense`` into ``out`` (caller zero-fills)."""
        n_rows = self.shape[0]
        for tile_ptr, tile_idx, tile_data, c0, c1 in self._tiles:
            tile_rhs = dense[c0:c1]
            if dense.ndim == 1:
                _st.csr_matvec(
                    n_rows, c1 - c0, tile_ptr, tile_idx, tile_data,
                    tile_rhs, out,
                )
            else:
                _st.csr_matvecs(
                    n_rows, c1 - c0, dense.shape[1], tile_ptr, tile_idx,
                    tile_data, tile_rhs.reshape(-1), out.reshape(-1),
                )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpmmPlan(shape={self.shape}, col_block={self.col_block}, "
            f"tiles={len(self._tiles)}, nbytes={self.nbytes})"
        )


# Plans keyed by (id(operator), col_block); each plan holds a strong
# reference to its operator, so a live entry's id cannot be recycled.
_PLAN_CACHE: OrderedDict[tuple, SpmmPlan] = OrderedDict()
_PLAN_CACHE_MAX = 8
_PLAN_LOCK = threading.Lock()


def get_plan(operator: sp.csr_matrix, col_block: int) -> SpmmPlan:
    """The (LRU-cached) column-tiling plan for a long-lived operator."""
    key = (id(operator), int(col_block))
    with _PLAN_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None and plan.operator is operator:
            _PLAN_CACHE.move_to_end(key)
            return plan
        # Built under the lock: plan construction is a per-operator
        # one-off, and racing builders would duplicate the nnz-sized copy.
        plan = SpmmPlan(operator, col_block)
        _PLAN_CACHE[key] = plan
        if len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
        return plan


def clear_plans() -> None:
    """Drop every cached tiling plan (frees the tiled operator copies)."""
    with _PLAN_LOCK:
        _PLAN_CACHE.clear()


def _pick_col_block(n_cols: int, dense: np.ndarray, l2_budget: int) -> int:
    """Columns per tile so one dense tile fits the L2 budget."""
    row_bytes = max(1, int(np.prod(dense.shape[1:], dtype=np.int64)) * dense.itemsize)
    return max(1024, min(n_cols, l2_budget // row_bytes))


def blocked_spmm(
    operator: sp.csr_matrix,
    dense: np.ndarray,
    chunk_rows: int,
    *,
    out: np.ndarray | None = None,
    l2_budget: int = DEFAULT_L2_BUDGET,
    plan: SpmmPlan | str = "auto",
) -> np.ndarray:
    """``operator @ dense`` via the zero-copy row walk or a column plan.

    Bitwise identical to the scipy product for sorted-indices CSR input.
    ``plan`` selects the layout: ``"auto"`` builds/reuses a cached
    :class:`SpmmPlan` when the dense operand overflows ``l2_budget`` and
    the operator is frozen (read-only data — i.e. owned by an operator
    cache and thus long-lived enough to amortize the plan build);
    ``"never"`` forces the row walk; an explicit :class:`SpmmPlan` is
    used as given. ``out``, when provided, must be a C-contiguous result
    buffer (e.g. rented from a :class:`~repro.perf.arena.BufferArena`).

    Callers must have validated :func:`kernel_supported` — this function
    assumes matching dtypes and raises :class:`ConfigError` otherwise.
    """
    check_int_range("chunk_rows", chunk_rows, 1)
    dense = np.asarray(dense)
    if not kernel_supported(operator, dense):
        raise ConfigError(
            "blocked_spmm requires a float32/float64 CSR operator and a "
            "matching-dtype C-contiguous dense operand "
            "(see kernel_supported)"
        )
    n_rows, n_cols = operator.shape
    out_shape = (n_rows,) + dense.shape[1:]
    if out is None:
        out = np.empty(out_shape, dtype=dense.dtype)
    elif out.shape != out_shape or out.dtype != dense.dtype or not out.flags.c_contiguous:
        raise ConfigError(
            f"out must be C-contiguous {out_shape} {dense.dtype}, "
            f"got {out.shape} {out.dtype}"
        )
    if isinstance(plan, SpmmPlan):
        out.fill(0)
        return plan.matmul(dense, out)
    if plan == "auto" and dense.ndim == 2 and dense.nbytes > l2_budget:
        col_block = _pick_col_block(n_cols, dense, l2_budget)
        n_tiles = -(-n_cols // col_block)
        row_bytes = dense.shape[1] * dense.itemsize
        if (
            col_block < n_cols
            # Tiling trades random dense-row gathers (a cache line per
            # non-zero, worst case) for (n_tiles - 1) extra streaming
            # passes over the output; engage only when that trade wins.
            # Wide operands fail it quickly — their output re-stream
            # dwarfs the gather savings — so plans engage at serving
            # widths, not training widths.
            and (n_tiles - 1) * n_rows * row_bytes < operator.nnz * 64
            and operator.has_sorted_indices
            and not operator.data.flags.writeable
        ):
            out.fill(0)
            return get_plan(operator, col_block).matmul(dense, out)
    indptr, indices, data = operator.indptr, operator.indices, operator.data
    for start in range(0, n_rows, chunk_rows):
        stop = min(start + chunk_rows, n_rows)
        band = out[start:stop]
        band.fill(0)
        _accumulate_band(n_cols, indptr, indices, data, start, stop, dense, band)
    return out


class FusedOperator:
    """Fused symmetric normalization + propagation: ``D^-1/2 A D^-1/2 @ X``.

    Holds the *raw* adjacency (with or without self-loops) plus the
    degree-scaling vector ``d^-1/2`` (zero for isolated nodes, matching
    :func:`repro.graph.ops.normalized_adjacency`), and applies the
    normalization on the fly around :func:`blocked_spmm`:

    .. math:: out = s \\odot (A (s \\odot X)), \\qquad s_i = d_i^{-1/2}

    The normalized operator is never materialized — for the ``gcn`` and
    ``sym`` engines this removes an nnz-sized matrix build *and* keeps
    the SpMM reading the adjacency's integer-weight-friendly data array.
    The scaled-input temporary is rented from the buffer arena, so
    steady-state hop loops allocate nothing.

    Agreement with the materialized operator is to rounding error (the
    scale factors are applied in a different association order), not
    bitwise — around 1e-15 relative for float64 inputs.
    """

    def __init__(self, adjacency: sp.csr_matrix) -> None:
        if not isinstance(adjacency, sp.csr_matrix):
            raise ConfigError("FusedOperator requires a csr_matrix adjacency")
        if adjacency.data.dtype not in SUPPORTED_DTYPES:
            raise ConfigError("FusedOperator requires float32/float64 data")
        self.adjacency = adjacency
        self.shape = tuple(int(s) for s in adjacency.shape)
        self.dtype = adjacency.data.dtype
        # Degrees summed in float64 regardless of the operand dtype so the
        # float32 mode's scale vector is a rounding of the exact one.
        deg = np.asarray(adjacency.sum(axis=1), dtype=np.float64).ravel()
        scale = np.zeros_like(deg)
        np.power(deg, -0.5, where=deg > 0, out=scale)
        self.scale = scale.astype(self.dtype)
        self.scale.setflags(write=False)
        self._scale_col = self.scale[:, None]

    @property
    def nnz(self) -> int:
        return int(self.adjacency.nnz)

    def matmul(
        self,
        dense: np.ndarray,
        chunk_rows: int,
        *,
        out: np.ndarray | None = None,
        l2_budget: int = DEFAULT_L2_BUDGET,
        arena: BufferArena | None = None,
    ) -> np.ndarray:
        """``(D^-1/2 A D^-1/2) @ dense`` without building the operator."""
        dense = np.asarray(dense)
        scale = self.scale if dense.ndim == 1 else self._scale_col
        arena = arena if arena is not None else get_default_arena()
        scaled = arena.rent(dense.shape, self.dtype)
        try:
            np.multiply(dense, scale, out=scaled)
            out = blocked_spmm(
                self.adjacency, scaled, chunk_rows, out=out, l2_budget=l2_budget
            )
        finally:
            arena.release(scaled)
        out *= scale
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusedOperator(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.dtype})"
        )


# Fused wrappers keyed by adjacency identity (strong ref held inside).
_FUSED_CACHE: OrderedDict[int, FusedOperator] = OrderedDict()
_FUSED_CACHE_MAX = 8
_FUSED_LOCK = threading.Lock()


def get_fused_operator(adjacency: sp.csr_matrix) -> FusedOperator:
    """The (LRU-cached) fused wrapper for a long-lived adjacency."""
    key = id(adjacency)
    with _FUSED_LOCK:
        fused = _FUSED_CACHE.get(key)
        if fused is not None and fused.adjacency is adjacency:
            _FUSED_CACHE.move_to_end(key)
            return fused
        fused = FusedOperator(adjacency)
        _FUSED_CACHE[key] = fused
        if len(_FUSED_CACHE) > _FUSED_CACHE_MAX:
            _FUSED_CACHE.popitem(last=False)
        return fused


class RowBand:
    """A decoded sub-CSR of selected operator rows, reusable across RHS.

    ``(operator @ dense)[rows]`` needs only the non-zeros of the selected
    rows; the legacy ``operator[rows] @ dense`` pays a scipy fancy-index
    extraction (bound checks, per-row copies, a fresh matrix object) on
    *every* call. A ``RowBand`` performs that index decode once — a
    vectorized gather of the selected rows' index/data spans — and then
    serves any number of right-hand sides against the decoded band:
    serving's depth-by-depth dirty-row patching reuses one band across
    consecutive depths with the same dirty set, and
    :func:`repro.perf.propagation.rows_spmm_multi` amortizes it across
    stacked right-hand sides.
    """

    def __init__(self, operator: sp.csr_matrix, rows: np.ndarray) -> None:
        if not isinstance(operator, sp.csr_matrix):
            raise ConfigError("RowBand requires a csr_matrix operator")
        rows = np.asarray(rows, dtype=np.int64)
        n_rows, n_cols = operator.shape
        rows = np.where(rows < 0, rows + n_rows, rows)
        if len(rows) and (rows.min() < 0 or rows.max() >= n_rows):
            raise ConfigError(f"row indices outside [0, {n_rows})")
        self.rows = rows
        self.n_cols = int(n_cols)
        self.dtype = operator.data.dtype
        indptr = operator.indptr
        starts = indptr[rows].astype(np.int64)
        counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
        total = int(counts.sum())
        band_ptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=band_ptr[1:])
        # Global nnz position of band entry j in selected row i:
        # starts[i] + (j - band_ptr[i]), vectorized over every entry.
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(band_ptr[:-1], counts)
            + np.repeat(starts, counts)
        )
        self.indptr = band_ptr.astype(operator.indices.dtype)
        self.indices = operator.indices[positions]
        self.data = operator.data[positions]

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1]) if len(self.indptr) else 0

    def matches(self, rows: np.ndarray) -> bool:
        """Whether this band was decoded for exactly these rows."""
        rows = np.asarray(rows, dtype=np.int64)
        return len(rows) == len(self.rows) and bool(np.array_equal(rows, self.rows))

    def matmul(
        self, dense: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``(operator @ dense)[rows]`` against the decoded band."""
        dense = np.asarray(dense)
        if dense.dtype != self.dtype or not dense.flags.c_contiguous:
            raise ConfigError(
                f"RowBand expects C-contiguous {self.dtype} dense input, "
                f"got {dense.dtype}"
            )
        out_shape = (len(self.rows),) + dense.shape[1:]
        if out is None:
            out = np.empty(out_shape, dtype=self.dtype)
        elif out.shape != out_shape or out.dtype != self.dtype or not out.flags.c_contiguous:
            raise ConfigError(
                f"out must be C-contiguous {out_shape} {self.dtype}, "
                f"got {out.shape} {out.dtype}"
            )
        out.fill(0)
        if len(self.rows):
            _accumulate_band(
                self.n_cols, self.indptr, self.indices, self.data,
                0, len(self.rows), dense, out,
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RowBand(rows={len(self.rows)}, nnz={self.nnz}, dtype={self.dtype})"
