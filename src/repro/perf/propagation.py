"""Row-chunked K-hop propagation with memoized hop-feature stacks.

The single graph-touching step of every decoupled model is the K-hop
stack :math:`[X, PX, \\ldots, P^K X]` for some propagation operator
:math:`P`. :class:`PropagationEngine` computes that stack *once* per
``(graph, features, operator)`` combination and serves it to every model
that asks — SGC, SIGN, GAMLP, LD2, KRR and the spectral filters all go
through :meth:`PropagationEngine.propagate`, so repeat experiments on the
same graph pay zero additional SpMM cost.

The SpMM itself is *row-chunked* (:func:`chunked_spmm`): the operator is
applied ``chunk_rows`` rows at a time, so the transient CSR slice stays
bounded regardless of graph size — the bounded-peak-memory discipline of
out-of-core systems (Ginex et al.), applied to in-memory precompute.

Memoized stacks grow on demand: asking for ``K=4`` after ``K=2`` extends
the cached stack by two hops instead of recomputing from scratch, and a
shorter request is served as a prefix slice.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.graph.core import Graph
from repro.obs import OBS
from repro.perf.fingerprint import array_fingerprint
from repro.perf.operator_cache import OperatorCache, get_default_cache
from repro.resilience.faults import FAULTS
from repro.storage.feature_cache import CacheStats
from repro.utils.concurrency import NULL_LOCK, make_lock
from repro.utils.validation import check_int_range

DEFAULT_CHUNK_ROWS = 16384

_ENGINE_KINDS = ("gcn", "rw", "lazy", "col", "sym", "lap")


def chunked_spmm(
    operator: sp.spmatrix,
    dense: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """``operator @ dense`` computed ``chunk_rows`` rows at a time.

    Numerically identical to the monolithic product, but only one
    row-slice of the operator is materialized at a time, bounding peak
    memory for the sparse intermediate on large graphs. Falls back to the
    plain product when the operator fits in a single chunk.
    """
    check_int_range("chunk_rows", chunk_rows, 1)
    # Fault site "propagation.hop": decided before the SpMM so transient
    # crashes and injected stragglers cost no compute; corrupt/drop act
    # on the hop output below. One attribute check when chaos is off;
    # the injector is loaded into a local exactly once because a
    # concurrent clear_injector() may null FAULTS.injector mid-call.
    inj = FAULTS.injector if FAULTS.active else None
    action = inj.fire("propagation.hop") if inj is not None else None
    dense = np.asarray(dense)
    n_rows = operator.shape[0]
    if n_rows <= chunk_rows:
        out = operator @ dense
    else:
        operator = operator.tocsr()
        out_shape = (n_rows,) if dense.ndim == 1 else (n_rows, dense.shape[1])
        out = np.empty(
            out_shape, dtype=np.result_type(operator.dtype, dense.dtype)
        )
        for start in range(0, n_rows, chunk_rows):
            stop = min(start + chunk_rows, n_rows)
            out[start:stop] = operator[start:stop] @ dense
    if action == "corrupt":
        out = inj.corrupt(out)
    elif action == "drop":
        # A dropped hop result models a lost partial aggregation.
        out = np.zeros_like(out)
    return out


def rows_spmm(
    operator: sp.spmatrix, rows: np.ndarray, dense: np.ndarray
) -> np.ndarray:
    """``(operator @ dense)[rows]`` without computing the full product.

    Slices the named rows out of the CSR operator and multiplies only that
    band — cost proportional to the non-zeros of the selected rows, not the
    whole graph. The localized-recompute kernel of incremental serving:
    after an edge insertion only the dirty K-hop rows of a hop stack are
    re-derived this way.
    """
    inj = FAULTS.injector if FAULTS.active else None
    action = inj.fire("propagation.hop") if inj is not None else None
    rows = np.asarray(rows, dtype=np.int64)
    out = operator.tocsr()[rows] @ np.asarray(dense)
    if action == "corrupt":
        out = inj.corrupt(out)
    elif action == "drop":
        out = np.zeros_like(out)
    return out


class PropagationEngine:
    """Shared K-hop propagation: chunked SpMM + memoized hop stacks.

    Parameters
    ----------
    cache:
        Operator cache used to build/reuse the propagation operators; when
        ``None`` the process-wide default cache is consulted at call time.
    chunk_rows:
        Row-chunk size for :func:`chunked_spmm`.
    max_stacks:
        LRU bound on memoized hop stacks (each stack holds ``K+1`` dense
        ``(n, d)`` arrays, so this is the dominant memory knob).
    threadsafe:
        Serialize memoized propagation under a reentrant lock (default).
        Stack construction is a registration-time event, not per-request
        work, so serializing concurrent builders is the correct trade —
        two threads racing the same key would otherwise both pay the
        full K-hop SpMM and tear the LRU bookkeeping.
    """

    def __init__(
        self,
        cache: OperatorCache | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        max_stacks: int = 8,
        threadsafe: bool = True,
    ) -> None:
        check_int_range("chunk_rows", chunk_rows, 1)
        check_int_range("max_stacks", max_stacks, 1)
        self._cache = cache
        self.chunk_rows = chunk_rows
        self.max_stacks = max_stacks
        self._lock = make_lock(threadsafe)
        self._stacks: OrderedDict[tuple, list[np.ndarray]] = OrderedDict()
        self._feature_hashes: OrderedDict[int, tuple[np.ndarray, str]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def cache(self) -> OperatorCache:
        """The operator cache this engine builds operators through."""
        return self._cache if self._cache is not None else get_default_cache()

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def operator(
        self, graph: Graph, kind: str = "gcn", alpha: float | None = None
    ) -> sp.csr_matrix:
        """The cached propagation operator for ``kind``.

        - ``"gcn"`` / ``"rw"`` / ``"lazy"``: the schemes of
          :func:`repro.graph.ops.propagation_matrix` (``lazy`` needs
          ``alpha``).
        - ``"col"``: column-stochastic :math:`A D^{-1}` (PPR push).
        - ``"sym"``: :math:`D^{-1/2} A D^{-1/2}` without self-loops.
        - ``"lap"``: symmetric-normalised Laplacian (high-pass filters).
        """
        if kind in ("gcn", "rw", "lazy"):
            return self.cache.propagation(graph, scheme=kind, alpha=alpha)
        if kind == "col":
            return self.cache.normalized_adjacency(graph, kind="col", self_loops=False)
        if kind == "sym":
            return self.cache.normalized_adjacency(graph, kind="sym", self_loops=False)
        if kind == "lap":
            return self.cache.laplacian(graph, kind="sym")
        raise ConfigError(f"kind must be one of {_ENGINE_KINDS}, got {kind!r}")

    def _feature_fingerprint(self, features: np.ndarray) -> str:
        """Content hash of a feature matrix, memoized by identity.

        Read-only arrays (e.g. ``graph.x``, or a previously served hop)
        cannot change content, so their digest is cached keyed by object
        identity — repeat lookups of a warm stack cost O(1) instead of a
        full re-hash. Writable arrays are always re-hashed.
        """
        if features.flags.writeable:
            return array_fingerprint(features)
        key = id(features)
        entry = self._feature_hashes.get(key)
        if entry is not None and entry[0] is features:
            self._feature_hashes.move_to_end(key)
            return entry[1]
        digest = array_fingerprint(features)
        # Holding a strong reference keeps the id from being recycled.
        self._feature_hashes[key] = (features, digest)
        if len(self._feature_hashes) > 4 * self.max_stacks:
            self._feature_hashes.popitem(last=False)
        return digest

    def _traced_spmm(
        self, operator: sp.csr_matrix, dense: np.ndarray, hop: int
    ) -> np.ndarray:
        """One hop of chunked SpMM under a ``perf.spmm`` kernel span.

        Only reached when observability is enabled — the disabled path
        calls :func:`chunked_spmm` directly behind a single
        ``OBS.enabled`` check.
        """
        with OBS.tracer.span(
            "perf.spmm", hop=hop, nnz=int(operator.nnz),
            chunk_rows=self.chunk_rows,
        ) as span:
            out = chunked_spmm(operator, dense, self.chunk_rows)
            span.set(out_bytes=int(out.nbytes))
        return out

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def propagate(
        self,
        graph: Graph,
        features: np.ndarray,
        k: int,
        kind: str = "gcn",
        alpha: float | None = None,
        memoize: bool = True,
    ) -> list[np.ndarray]:
        """The hop stack ``[X, PX, ..., P^K X]`` (``K+1`` arrays).

        Served from the stack cache when the same ``(graph, features,
        kind)`` combination was propagated before: shorter requests return
        a prefix, longer ones extend the cached stack in place. Returned
        arrays are read-only and shared — copy before mutating. Pass
        ``memoize=False`` for one-off inputs (e.g. randomly corrupted
        views) that should not occupy cache slots.
        """
        check_int_range("k", k, 0)
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != graph.n_nodes:
            raise ConfigError(
                f"features must have one row per node "
                f"({graph.n_nodes}), got {features.shape[0]}"
            )
        if not memoize:
            if OBS.enabled:
                with OBS.tracer.span(
                    "perf.propagate", n_nodes=graph.n_nodes, k=k, kind=kind,
                    memoize=False,
                ):
                    operator = self.operator(graph, kind, alpha)
                    stack = [features]
                    for _ in range(k):
                        stack.append(self._traced_spmm(operator, stack[-1],
                                                       len(stack)))
            else:
                operator = self.operator(graph, kind, alpha)
                stack = [features]
                for _ in range(k):
                    stack.append(
                        chunked_spmm(operator, stack[-1], self.chunk_rows)
                    )
            return stack
        # Memoized path: the whole lookup-or-build runs under the lock
        # (see the ``threadsafe`` parameter note) so concurrent callers
        # never duplicate a build or tear the LRU order.
        with self._lock or NULL_LOCK:
            return self._propagate_memoized(graph, features, k, kind, alpha)

    def _propagate_memoized(
        self,
        graph: Graph,
        features: np.ndarray,
        k: int,
        kind: str,
        alpha: float | None,
    ) -> list[np.ndarray]:
        key = (
            graph.fingerprint,
            self._feature_fingerprint(features),
            kind,
            None if alpha is None else float(alpha),
        )
        stack = self._stacks.get(key)
        if stack is not None and len(stack) > k:
            self._hits += 1
            self._stacks.move_to_end(key)
            if OBS.enabled:
                with OBS.tracer.span(
                    "perf.propagate", n_nodes=graph.n_nodes, k=k, kind=kind,
                    cache_hit=True,
                ):
                    pass
            return list(stack[: k + 1])
        self._misses += 1
        if stack is None:
            base = features if not features.flags.writeable else features.copy()
            base.setflags(write=False)
            stack = [base]
        if len(stack) <= k:
            if OBS.enabled:
                with OBS.tracer.span(
                    "perf.propagate", n_nodes=graph.n_nodes, k=k, kind=kind,
                    cached_hops=len(stack) - 1,
                ) as span:
                    operator = self.operator(graph, kind, alpha)
                    span.set(nnz=int(operator.nnz))
                    while len(stack) <= k:
                        nxt = self._traced_spmm(operator, stack[-1], len(stack))
                        nxt.setflags(write=False)
                        stack.append(nxt)
                    span.set(
                        stack_bytes=int(sum(arr.nbytes for arr in stack))
                    )
            else:
                operator = self.operator(graph, kind, alpha)
                while len(stack) <= k:
                    nxt = chunked_spmm(operator, stack[-1], self.chunk_rows)
                    nxt.setflags(write=False)
                    stack.append(nxt)
        self._stacks[key] = stack
        self._stacks.move_to_end(key)
        if len(self._stacks) > self.max_stacks:
            self._stacks.popitem(last=False)
            self._evictions += 1
        return list(stack)

    def hop_features(
        self, graph: Graph, k: int, kind: str = "gcn", alpha: float | None = None
    ) -> list[np.ndarray]:
        """:meth:`propagate` applied to the graph's own feature matrix."""
        if graph.x is None:
            raise ValueError("graph needs features for hop_features")
        return self.propagate(graph, graph.x, k, kind=kind, alpha=alpha)

    # ------------------------------------------------------------------ #
    # Introspection / management
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> CacheStats:
        """Stack-cache hit/miss/eviction accounting."""
        with self._lock or NULL_LOCK:
            return CacheStats(self._hits, self._misses, self._evictions)

    @property
    def nbytes(self) -> int:
        """Total bytes held by memoized hop stacks."""
        with self._lock or NULL_LOCK:
            return sum(
                arr.nbytes for stack in self._stacks.values() for arr in stack
            )

    def snapshot(self) -> dict[str, float]:
        """Flat counter/rate dict (:class:`repro.obs.StatsSource`)."""
        with self._lock or NULL_LOCK:
            s = CacheStats(self._hits, self._misses, self._evictions)
            stacks = len(self._stacks)
            nbytes = sum(
                arr.nbytes for stack in self._stacks.values() for arr in stack
            )
        return {
            "hits": s.hits,
            "misses": s.misses,
            "evictions": s.evictions,
            "accesses": s.accesses,
            "hit_rate": s.hit_rate,
            "stacks": stacks,
            "nbytes": nbytes,
        }

    def reset(self) -> None:
        """Zero the counters; memoized stacks stay resident
        (:meth:`clear` is the destructive variant)."""
        with self._lock or NULL_LOCK:
            self._hits = self._misses = self._evictions = 0

    def clear(self) -> None:
        """Drop every memoized stack and reset the counters."""
        with self._lock or NULL_LOCK:
            self._stacks.clear()
            self._feature_hashes.clear()
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        return len(self._stacks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"PropagationEngine(stacks={len(self)}/{self.max_stacks}, "
            f"hits={s.hits}, misses={s.misses}, chunk_rows={self.chunk_rows})"
        )


# --------------------------------------------------------------------- #
# Process-wide default engine
# --------------------------------------------------------------------- #

_default_engine = PropagationEngine()


def get_default_engine() -> PropagationEngine:
    """The process-wide engine shared by the decoupled models."""
    return _default_engine


def set_default_engine(engine: PropagationEngine) -> PropagationEngine:
    """Swap the process-wide engine; returns the previous one."""
    global _default_engine
    if not isinstance(engine, PropagationEngine):
        raise ConfigError("set_default_engine expects a PropagationEngine")
    previous = _default_engine
    _default_engine = engine
    return previous


def propagate(
    graph: Graph,
    features: np.ndarray,
    k: int,
    kind: str = "gcn",
    alpha: float | None = None,
    engine: PropagationEngine | None = None,
) -> list[np.ndarray]:
    """Shared entry point: K-hop stack via the (default) engine."""
    return (engine if engine is not None else _default_engine).propagate(
        graph, features, k, kind=kind, alpha=alpha
    )
