"""Row-chunked K-hop propagation with memoized hop-feature stacks.

The single graph-touching step of every decoupled model is the K-hop
stack :math:`[X, PX, \\ldots, P^K X]` for some propagation operator
:math:`P`. :class:`PropagationEngine` computes that stack *once* per
``(graph, features, operator)`` combination and serves it to every model
that asks — SGC, SIGN, GAMLP, LD2, KRR and the spectral filters all go
through :meth:`PropagationEngine.propagate`, so repeat experiments on the
same graph pay zero additional SpMM cost.

The SpMM itself is *row-chunked* (:func:`chunked_spmm`): the operator is
applied ``chunk_rows`` rows at a time, so the transient working set stays
bounded regardless of graph size — the bounded-peak-memory discipline of
out-of-core systems (Ginex et al.), applied to in-memory precompute.

``chunked_spmm`` / ``rows_spmm`` are thin *dispatchers*: they own the
``propagation.hop`` fault-injection site and the fallback semantics,
and route eligible operands to the hand-rolled CSR kernels of
:mod:`repro.perf.kernels` (zero-copy row walk, L2-tiled column
blocking, decoded row bands). Unsupported dtypes or operator formats
take the legacy per-chunk scipy slice path unchanged. For the
``gcn``/``sym`` engines the per-hop multiply runs through a
:class:`~repro.perf.kernels.FusedOperator` — normalization applied on
the fly, the normalized operator never materialized — with scratch
rented from :mod:`repro.perf.arena`.

The engine is dtype-aware end to end: ``PropagationEngine(dtype=...)``
(or a per-call ``propagate(..., dtype=...)`` override) selects float32
or float64 for the whole hop stack. The default stays float64, matching
the historical behaviour of upcasting every input; float32 halves the
memory traffic of this memory-bound kernel.

Memoized stacks grow on demand: asking for ``K=4`` after ``K=2`` extends
the cached stack by two hops instead of recomputing from scratch, and a
shorter request is served as a prefix slice.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.graph.core import Graph
from repro.obs import OBS
from repro.perf import kernels
from repro.perf.arena import BufferArena
from repro.perf.fingerprint import array_fingerprint
from repro.perf.operator_cache import OperatorCache, get_default_cache
from repro.resilience.faults import FAULTS
from repro.storage.feature_cache import CacheStats
from repro.utils.concurrency import NULL_LOCK, make_lock
from repro.utils.validation import check_int_range

DEFAULT_CHUNK_ROWS = 16384

_ENGINE_KINDS = ("gcn", "rw", "lazy", "col", "sym", "lap")

_SPMM_KERNELS = ("auto", "blocked", "rowwalk", "slice")


def _fire_hop_fault():
    """Arm the ``propagation.hop`` fault site; returns ``(injector, action)``.

    Decided before the SpMM so transient crashes and injected stragglers
    cost no compute; corrupt/drop act on the hop output via
    :func:`_apply_hop_fault`. One attribute check when chaos is off; the
    injector is loaded into a local exactly once because a concurrent
    clear_injector() may null FAULTS.injector mid-call.
    """
    inj = FAULTS.injector if FAULTS.active else None
    action = inj.fire("propagation.hop") if inj is not None else None
    return inj, action


def _apply_hop_fault(inj, action, out: np.ndarray) -> np.ndarray:
    if action == "corrupt":
        return inj.corrupt(out)
    if action == "drop":
        # A dropped hop result models a lost partial aggregation.
        return np.zeros_like(out)
    return out


def chunked_spmm(
    operator: sp.spmatrix,
    dense: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    kernel: str = "auto",
    l2_budget: int = kernels.DEFAULT_L2_BUDGET,
) -> np.ndarray:
    """``operator @ dense`` computed ``chunk_rows`` rows at a time.

    Numerically identical to the monolithic product (bitwise, for a
    sorted-indices CSR operator), with the transient working set bounded
    regardless of graph size. ``kernel`` selects the implementation:

    - ``"auto"`` (default): the hand-rolled kernels of
      :mod:`repro.perf.kernels` when the operand pair qualifies
      (:func:`~repro.perf.kernels.kernel_supported`), else the legacy
      slice path — column-blocked via a cached
      :class:`~repro.perf.kernels.SpmmPlan` for frozen operators whose
      dense operand overflows ``l2_budget``, zero-copy row walk
      otherwise.
    - ``"blocked"`` / ``"rowwalk"``: force the kernel path (with / without
      column-plan eligibility); raises :class:`ConfigError` if the
      operands don't qualify.
    - ``"slice"``: force the legacy per-chunk ``operator[start:stop] @
      dense`` scipy path.
    """
    check_int_range("chunk_rows", chunk_rows, 1)
    if kernel not in _SPMM_KERNELS:
        raise ConfigError(f"kernel must be one of {_SPMM_KERNELS}, got {kernel!r}")
    inj, action = _fire_hop_fault()
    dense = np.asarray(dense)
    if kernel != "slice" and kernels.kernel_supported(operator, dense):
        out = kernels.blocked_spmm(
            operator, dense, chunk_rows, l2_budget=l2_budget,
            plan="auto" if kernel in ("auto", "blocked") else "never",
        )
    elif kernel in ("blocked", "rowwalk"):
        raise ConfigError(
            f"kernel={kernel!r} requires a float32/float64 CSR operator "
            "with a matching-dtype dense operand (see kernel_supported)"
        )
    else:
        n_rows = operator.shape[0]
        if n_rows <= chunk_rows:
            out = operator @ dense
        else:
            operator = operator.tocsr()
            out_shape = (n_rows,) if dense.ndim == 1 else (n_rows, dense.shape[1])
            out = np.empty(
                out_shape, dtype=np.result_type(operator.dtype, dense.dtype)
            )
            for start in range(0, n_rows, chunk_rows):
                stop = min(start + chunk_rows, n_rows)
                out[start:stop] = operator[start:stop] @ dense
    return _apply_hop_fault(inj, action, out)


def fused_spmm(
    operator: kernels.FusedOperator,
    dense: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    l2_budget: int = kernels.DEFAULT_L2_BUDGET,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """One fused normalize+propagate hop, under the ``propagation.hop``
    fault site (the fused analogue of :func:`chunked_spmm`)."""
    check_int_range("chunk_rows", chunk_rows, 1)
    inj, action = _fire_hop_fault()
    out = operator.matmul(
        np.asarray(dense), chunk_rows, l2_budget=l2_budget, arena=arena
    )
    return _apply_hop_fault(inj, action, out)


def _rows_product(operator, rows, dense, chunk_rows, band):
    """The fault-free core of :func:`rows_spmm` (dispatch + chunking)."""
    if (
        band is not None
        and kernels.HAVE_SPARSETOOLS
        and band.dtype == dense.dtype
        and dense.flags.c_contiguous
        and band.matches(rows)
    ):
        return band.matmul(dense)
    csr = operator.tocsr()
    if len(rows) and kernels.kernel_supported(csr, dense):
        out = np.empty((len(rows),) + dense.shape[1:], dtype=dense.dtype)
        for start in range(0, len(rows), chunk_rows):
            stop = min(start + chunk_rows, len(rows))
            kernels.RowBand(csr, rows[start:stop]).matmul(
                dense, out=out[start:stop]
            )
        return out
    if len(rows) <= chunk_rows:
        return csr[rows] @ dense
    out = np.empty(
        (len(rows),) + dense.shape[1:],
        dtype=np.result_type(csr.dtype, dense.dtype),
    )
    for start in range(0, len(rows), chunk_rows):
        stop = min(start + chunk_rows, len(rows))
        out[start:stop] = csr[rows[start:stop]] @ dense
    return out


def rows_spmm(
    operator: sp.spmatrix,
    rows: np.ndarray,
    dense: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    band: kernels.RowBand | None = None,
) -> np.ndarray:
    """``(operator @ dense)[rows]`` without computing the full product.

    Multiplies only the band of the selected rows — cost proportional to
    their non-zeros, not the whole graph. The localized-recompute kernel
    of incremental serving: after an edge insertion only the dirty K-hop
    rows of a hop stack are re-derived this way.

    The selection is processed ``chunk_rows`` rows at a time, so a dirty
    frontier covering most of the graph still observes the same peak
    transient memory bound as :func:`chunked_spmm`. Eligible operands
    decode each chunk into a :class:`~repro.perf.kernels.RowBand`
    (vectorized index gather, no scipy fancy-index slice); a caller that
    applies the *same* row set repeatedly may pass a pre-decoded
    ``band`` to skip the decode entirely (it is used only when it
    matches ``rows`` and the dense dtype).
    """
    check_int_range("chunk_rows", chunk_rows, 1)
    inj, action = _fire_hop_fault()
    rows = np.asarray(rows, dtype=np.int64)
    dense = np.asarray(dense)
    out = _rows_product(operator, rows, dense, chunk_rows, band)
    return _apply_hop_fault(inj, action, out)


def rows_spmm_multi(
    operator: sp.spmatrix,
    rows: np.ndarray,
    denses: list[np.ndarray],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> list[np.ndarray]:
    """``[(operator @ D)[rows] for D in denses]`` with one index decode.

    The multi-RHS batched form of :func:`rows_spmm`: each ``chunk_rows``
    window of the selection is decoded into a
    :class:`~repro.perf.kernels.RowBand` once and applied to every
    stacked right-hand side, amortizing the index arithmetic that
    otherwise dominates when the dense operands are narrow. One
    ``propagation.hop`` fault decision covers the whole batch (it is a
    single logical recompute).
    """
    check_int_range("chunk_rows", chunk_rows, 1)
    inj, action = _fire_hop_fault()
    rows = np.asarray(rows, dtype=np.int64)
    denses = [np.asarray(d) for d in denses]
    csr = operator.tocsr() if denses else operator
    if denses and all(
        d.dtype == denses[0].dtype and kernels.kernel_supported(csr, d)
        for d in denses
    ):
        outs = [
            np.empty((len(rows),) + d.shape[1:], dtype=d.dtype) for d in denses
        ]
        for start in range(0, len(rows), chunk_rows):
            stop = min(start + chunk_rows, len(rows))
            band = kernels.RowBand(csr, rows[start:stop])
            for dense, out in zip(denses, outs):
                band.matmul(dense, out=out[start:stop])
    else:
        outs = [
            _rows_product(csr, rows, dense, chunk_rows, None) for dense in denses
        ]
    return [_apply_hop_fault(inj, action, out) for out in outs]


class PropagationEngine:
    """Shared K-hop propagation: chunked SpMM + memoized hop stacks.

    Parameters
    ----------
    cache:
        Operator cache used to build/reuse the propagation operators; when
        ``None`` the process-wide default cache is consulted at call time.
    chunk_rows:
        Row-chunk size for :func:`chunked_spmm`.
    max_stacks:
        LRU bound on memoized hop stacks (each stack holds ``K+1`` dense
        ``(n, d)`` arrays, so this is the dominant memory knob).
    threadsafe:
        Serialize memoized propagation under a reentrant lock (default).
        Stack construction is a registration-time event, not per-request
        work, so serializing concurrent builders is the correct trade —
        two threads racing the same key would otherwise both pay the
        full K-hop SpMM and tear the LRU bookkeeping.
    dtype:
        Element type of every propagated stack: ``float64`` (default,
        the historical behaviour) or ``float32``, which halves the
        memory traffic of the memory-bound SpMM. Overridable per call
        via ``propagate(..., dtype=...)``.
    fused:
        Run ``gcn``/``sym`` hops through the fused normalize+propagate
        kernel (:class:`repro.perf.kernels.FusedOperator`) instead of
        materializing the normalized operator (default on; agreement is
        to rounding error, ~1e-15 relative for float64).
    l2_budget:
        Dense-tile cache budget handed to the blocked kernels.
    arena:
        Buffer arena the fused kernel rents scratch from; ``None`` uses
        the process-wide default arena.
    """

    def __init__(
        self,
        cache: OperatorCache | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        max_stacks: int = 8,
        threadsafe: bool = True,
        dtype=np.float64,
        fused: bool = True,
        l2_budget: int = kernels.DEFAULT_L2_BUDGET,
        arena: BufferArena | None = None,
    ) -> None:
        check_int_range("chunk_rows", chunk_rows, 1)
        check_int_range("max_stacks", max_stacks, 1)
        check_int_range("l2_budget", l2_budget, 1)
        self._cache = cache
        self.chunk_rows = chunk_rows
        self.max_stacks = max_stacks
        self.dtype = self._check_dtype(dtype)
        self.fused = bool(fused)
        self.l2_budget = l2_budget
        self._arena = arena
        self._lock = make_lock(threadsafe)
        self._stacks: OrderedDict[tuple, list[np.ndarray]] = OrderedDict()
        self._feature_hashes: OrderedDict[int, tuple[np.ndarray, str]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def _check_dtype(dtype) -> np.dtype:
        dt = np.dtype(dtype)
        if dt not in kernels.SUPPORTED_DTYPES:
            raise ConfigError(
                f"propagation dtype must be float32 or float64, got {dt}"
            )
        return dt

    @property
    def cache(self) -> OperatorCache:
        """The operator cache this engine builds operators through."""
        return self._cache if self._cache is not None else get_default_cache()

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def operator(
        self,
        graph: Graph,
        kind: str = "gcn",
        alpha: float | None = None,
        dtype=None,
    ) -> sp.csr_matrix:
        """The cached propagation operator for ``kind``.

        - ``"gcn"`` / ``"rw"`` / ``"lazy"``: the schemes of
          :func:`repro.graph.ops.propagation_matrix` (``lazy`` needs
          ``alpha``).
        - ``"col"``: column-stochastic :math:`A D^{-1}` (PPR push).
        - ``"sym"``: :math:`D^{-1/2} A D^{-1/2}` without self-loops.
        - ``"lap"``: symmetric-normalised Laplacian (high-pass filters).

        ``dtype`` selects a value-dtype variant (cached alongside the
        canonical operator, sharing its frozen index structure).
        """
        if kind in ("gcn", "rw", "lazy"):
            return self.cache.propagation(graph, scheme=kind, alpha=alpha,
                                          dtype=dtype)
        if kind == "col":
            return self.cache.normalized_adjacency(
                graph, kind="col", self_loops=False, dtype=dtype
            )
        if kind == "sym":
            return self.cache.normalized_adjacency(
                graph, kind="sym", self_loops=False, dtype=dtype
            )
        if kind == "lap":
            return self.cache.laplacian(graph, kind="sym", dtype=dtype)
        raise ConfigError(f"kind must be one of {_ENGINE_KINDS}, got {kind!r}")

    def _hop_operator(self, graph: Graph, kind: str, alpha, dtype: np.dtype):
        """What one hop multiplies by: a fused wrapper for the
        symmetric-normalized kinds, else the cached materialized operator."""
        if self.fused and kind in ("gcn", "sym") and kernels.HAVE_SPARSETOOLS:
            adj = self.cache.adjacency(
                graph, self_loops=(kind == "gcn"), dtype=dtype
            )
            if isinstance(adj, sp.csr_matrix) and adj.data.dtype == dtype:
                return kernels.get_fused_operator(adj)
        return self.operator(graph, kind, alpha, dtype=dtype)

    def _apply_hop(self, operator, dense: np.ndarray) -> np.ndarray:
        """One hop through the matching dispatcher (fault site included)."""
        if isinstance(operator, kernels.FusedOperator):
            return fused_spmm(
                operator, dense, self.chunk_rows,
                l2_budget=self.l2_budget, arena=self._arena,
            )
        return chunked_spmm(
            operator, dense, self.chunk_rows, l2_budget=self.l2_budget
        )

    def _feature_fingerprint(self, features: np.ndarray) -> str:
        """Content hash of a feature matrix, memoized by identity.

        Read-only arrays (e.g. ``graph.x``, or a previously served hop)
        cannot change content, so their digest is cached keyed by object
        identity — repeat lookups of a warm stack cost O(1) instead of a
        full re-hash. Writable arrays are always re-hashed.
        """
        if features.flags.writeable:
            return array_fingerprint(features)
        key = id(features)
        entry = self._feature_hashes.get(key)
        if entry is not None and entry[0] is features:
            self._feature_hashes.move_to_end(key)
            return entry[1]
        digest = array_fingerprint(features)
        # Holding a strong reference keeps the id from being recycled.
        self._feature_hashes[key] = (features, digest)
        if len(self._feature_hashes) > 4 * self.max_stacks:
            self._feature_hashes.popitem(last=False)
        return digest

    def _traced_spmm(self, operator, dense: np.ndarray, hop: int) -> np.ndarray:
        """One hop of SpMM under a ``perf.spmm`` kernel span.

        Only reached when observability is enabled — the disabled path
        calls :meth:`_apply_hop` directly behind a single
        ``OBS.enabled`` check.
        """
        with OBS.tracer.span(
            "perf.spmm", hop=hop, nnz=int(operator.nnz),
            chunk_rows=self.chunk_rows,
            fused=isinstance(operator, kernels.FusedOperator),
        ) as span:
            out = self._apply_hop(operator, dense)
            span.set(out_bytes=int(out.nbytes))
        return out

    # ------------------------------------------------------------------ #
    # Propagation
    # ------------------------------------------------------------------ #

    def propagate(
        self,
        graph: Graph,
        features: np.ndarray,
        k: int,
        kind: str = "gcn",
        alpha: float | None = None,
        memoize: bool = True,
        dtype=None,
    ) -> list[np.ndarray]:
        """The hop stack ``[X, PX, ..., P^K X]`` (``K+1`` arrays).

        Served from the stack cache when the same ``(graph, features,
        kind, dtype)`` combination was propagated before: shorter
        requests return a prefix, longer ones extend the cached stack in
        place. Returned arrays are read-only and shared — copy before
        mutating. Pass ``memoize=False`` for one-off inputs (e.g.
        randomly corrupted views) that should not occupy cache slots.
        ``dtype`` overrides the engine's configured stack dtype for this
        call (float32 or float64); features are cast up front so the
        whole stack — and every SpMM — runs in that precision.
        """
        check_int_range("k", k, 0)
        eff_dtype = self.dtype if dtype is None else self._check_dtype(dtype)
        features = np.asarray(features, dtype=eff_dtype)
        if features.shape[0] != graph.n_nodes:
            raise ConfigError(
                f"features must have one row per node "
                f"({graph.n_nodes}), got {features.shape[0]}"
            )
        if not memoize:
            if OBS.enabled:
                with OBS.tracer.span(
                    "perf.propagate", n_nodes=graph.n_nodes, k=k, kind=kind,
                    memoize=False, dtype=eff_dtype.name,
                ):
                    operator = self._hop_operator(graph, kind, alpha, eff_dtype)
                    stack = [features]
                    for _ in range(k):
                        stack.append(self._traced_spmm(operator, stack[-1],
                                                       len(stack)))
            else:
                operator = self._hop_operator(graph, kind, alpha, eff_dtype)
                stack = [features]
                for _ in range(k):
                    stack.append(self._apply_hop(operator, stack[-1]))
            return stack
        # Memoized path: the whole lookup-or-build runs under the lock
        # (see the ``threadsafe`` parameter note) so concurrent callers
        # never duplicate a build or tear the LRU order.
        with self._lock or NULL_LOCK:
            return self._propagate_memoized(
                graph, features, k, kind, alpha, eff_dtype
            )

    def _propagate_memoized(
        self,
        graph: Graph,
        features: np.ndarray,
        k: int,
        kind: str,
        alpha: float | None,
        eff_dtype: np.dtype,
    ) -> list[np.ndarray]:
        key = (
            graph.fingerprint,
            self._feature_fingerprint(features),
            kind,
            None if alpha is None else float(alpha),
            eff_dtype.str,
        )
        stack = self._stacks.get(key)
        if stack is not None and len(stack) > k:
            self._hits += 1
            self._stacks.move_to_end(key)
            if OBS.enabled:
                with OBS.tracer.span(
                    "perf.propagate", n_nodes=graph.n_nodes, k=k, kind=kind,
                    cache_hit=True,
                ):
                    pass
            return list(stack[: k + 1])
        self._misses += 1
        if stack is None:
            base = features if not features.flags.writeable else features.copy()
            base.setflags(write=False)
            stack = [base]
        if len(stack) <= k:
            if OBS.enabled:
                with OBS.tracer.span(
                    "perf.propagate", n_nodes=graph.n_nodes, k=k, kind=kind,
                    cached_hops=len(stack) - 1, dtype=eff_dtype.name,
                ) as span:
                    operator = self._hop_operator(graph, kind, alpha, eff_dtype)
                    span.set(nnz=int(operator.nnz))
                    while len(stack) <= k:
                        nxt = self._traced_spmm(operator, stack[-1], len(stack))
                        nxt.setflags(write=False)
                        stack.append(nxt)
                    span.set(
                        stack_bytes=int(sum(arr.nbytes for arr in stack))
                    )
            else:
                operator = self._hop_operator(graph, kind, alpha, eff_dtype)
                while len(stack) <= k:
                    nxt = self._apply_hop(operator, stack[-1])
                    nxt.setflags(write=False)
                    stack.append(nxt)
        self._stacks[key] = stack
        self._stacks.move_to_end(key)
        if len(self._stacks) > self.max_stacks:
            self._stacks.popitem(last=False)
            self._evictions += 1
        return list(stack)

    def hop_features(
        self,
        graph: Graph,
        k: int,
        kind: str = "gcn",
        alpha: float | None = None,
        dtype=None,
    ) -> list[np.ndarray]:
        """:meth:`propagate` applied to the graph's own feature matrix."""
        if graph.x is None:
            raise ValueError("graph needs features for hop_features")
        return self.propagate(graph, graph.x, k, kind=kind, alpha=alpha,
                              dtype=dtype)

    # ------------------------------------------------------------------ #
    # Introspection / management
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> CacheStats:
        """Stack-cache hit/miss/eviction accounting."""
        with self._lock or NULL_LOCK:
            return CacheStats(self._hits, self._misses, self._evictions)

    @property
    def nbytes(self) -> int:
        """Total bytes held by memoized hop stacks."""
        with self._lock or NULL_LOCK:
            return sum(
                arr.nbytes for stack in self._stacks.values() for arr in stack
            )

    def snapshot(self) -> dict[str, float]:
        """Flat counter/rate dict (:class:`repro.obs.StatsSource`)."""
        with self._lock or NULL_LOCK:
            s = CacheStats(self._hits, self._misses, self._evictions)
            stacks = len(self._stacks)
            nbytes = sum(
                arr.nbytes for stack in self._stacks.values() for arr in stack
            )
        return {
            "hits": s.hits,
            "misses": s.misses,
            "evictions": s.evictions,
            "accesses": s.accesses,
            "hit_rate": s.hit_rate,
            "stacks": stacks,
            "nbytes": nbytes,
        }

    def reset(self) -> None:
        """Zero the counters; memoized stacks stay resident
        (:meth:`clear` is the destructive variant)."""
        with self._lock or NULL_LOCK:
            self._hits = self._misses = self._evictions = 0

    def clear(self) -> None:
        """Drop every memoized stack and reset the counters."""
        with self._lock or NULL_LOCK:
            self._stacks.clear()
            self._feature_hashes.clear()
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        return len(self._stacks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"PropagationEngine(stacks={len(self)}/{self.max_stacks}, "
            f"hits={s.hits}, misses={s.misses}, chunk_rows={self.chunk_rows})"
        )


# --------------------------------------------------------------------- #
# Process-wide default engine
# --------------------------------------------------------------------- #

_default_engine = PropagationEngine()


def get_default_engine() -> PropagationEngine:
    """The process-wide engine shared by the decoupled models."""
    return _default_engine


def set_default_engine(engine: PropagationEngine) -> PropagationEngine:
    """Swap the process-wide engine; returns the previous one."""
    global _default_engine
    if not isinstance(engine, PropagationEngine):
        raise ConfigError("set_default_engine expects a PropagationEngine")
    previous = _default_engine
    _default_engine = engine
    return previous


def propagate(
    graph: Graph,
    features: np.ndarray,
    k: int,
    kind: str = "gcn",
    alpha: float | None = None,
    engine: PropagationEngine | None = None,
    dtype=None,
) -> list[np.ndarray]:
    """Shared entry point: K-hop stack via the (default) engine."""
    return (engine if engine is not None else _default_engine).propagate(
        graph, features, k, kind=kind, alpha=alpha, dtype=dtype
    )
