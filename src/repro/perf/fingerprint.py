"""Cheap content fingerprinting for immutable graphs and dense arrays.

The operator cache and propagation engine key their entries by *content*,
not object identity: two :class:`~repro.graph.core.Graph` instances holding
identical CSR arrays share one cache entry, and a structurally different
graph can never be served a stale operator. Fingerprinting is a single
blake2b pass over the raw buffers — orders of magnitude cheaper than even
one sparse matmul — and :class:`~repro.graph.core.Graph` memoizes the
digest on the instance (:attr:`~repro.graph.core.Graph.fingerprint`)
because graphs are immutable, so the hash is paid at most once per graph.
"""

from __future__ import annotations

import hashlib

import numpy as np


def array_fingerprint(*arrays: np.ndarray | None) -> str:
    """Hex digest over the dtype, shape and bytes of each array, in order.

    ``None`` entries hash to a distinct marker so optional arrays (e.g. a
    missing feature matrix) cannot collide with empty ones.
    """
    digest = hashlib.blake2b(digest_size=16)
    for arr in arrays:
        if arr is None:
            digest.update(b"<none>")
            continue
        contiguous = np.ascontiguousarray(arr)
        digest.update(str(contiguous.dtype).encode())
        digest.update(str(contiguous.shape).encode())
        digest.update(contiguous.tobytes())
    return digest.hexdigest()


def graph_fingerprint(graph) -> str:
    """Content hash of a graph's CSR arrays plus its directedness flag.

    Prefer :attr:`Graph.fingerprint`, which caches this digest on the
    instance; this function always recomputes from the raw arrays.
    """
    prefix = "d" if graph.directed else "u"
    return prefix + array_fingerprint(graph.indptr, graph.indices, graph.weights)
