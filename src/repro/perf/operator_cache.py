"""Memoized construction of derived graph operators.

Every decoupled model in the zoo (SGC/SIGN, GAMLP, SCARA, LD2, spectral
filters, APPNP's propagation step, ...) consumes the same handful of
operators — normalized adjacencies, Laplacians, the renormalised GCN
operator — derived deterministically from an *immutable* graph. Rebuilding
them per model call is pure waste: the data-management argument of the
paper is that precomputation should be shared. :class:`OperatorCache`
memoizes operator construction keyed by the graph's content fingerprint,
with LRU bounds and hit/miss/eviction accounting (reusing the
:class:`~repro.storage.feature_cache.CacheStats` convention of the
storage tier).

Cached matrices are returned *shared* between callers, with their
underlying buffers flagged read-only so an accidental in-place mutation
raises instead of silently corrupting every other consumer. Call
``.copy()`` on a result before mutating it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.graph import ops as graph_ops
from repro.graph.core import Graph
from repro.obs import OBS, get_logger
from repro.storage.feature_cache import CacheStats
from repro.utils.concurrency import NULL_LOCK, make_lock
from repro.utils.validation import check_int_range

_LOG = get_logger("repro.perf.operator_cache")


def _freeze(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Mark a CSR matrix's buffers read-only (shared-cache safety).

    All three CSR arrays are frozen — ``data`` *and* the
    ``indices``/``indptr`` structure — so a caller mutating a cached
    operator's values or topology raises instead of silently corrupting
    every sharer. The frozen-data flag doubles as the kernel layer's
    "long-lived operator" signal (see
    :func:`repro.perf.kernels.blocked_spmm`'s plan heuristic).
    """
    for arr in (matrix.data, matrix.indices, matrix.indptr):
        arr.setflags(write=False)
    return matrix


def _cast_shared(matrix: sp.csr_matrix, dtype: np.dtype) -> sp.csr_matrix:
    """A value-dtype variant of a frozen CSR sharing its index structure.

    Only ``data`` is re-allocated (cast); ``indices``/``indptr`` are the
    *same* frozen arrays as the canonical operator, so a float32 variant
    costs nnz × 4 bytes, not a full matrix copy.
    """
    cast = sp.csr_matrix(matrix.shape, dtype=dtype)
    # Assigned directly (not via the constructor, which copies the index
    # arrays on recent scipy) so the variant really does alias the frozen
    # canonical structure.
    cast.data = matrix.data.astype(dtype)
    cast.indices = matrix.indices
    cast.indptr = matrix.indptr
    cast.has_sorted_indices = matrix.has_sorted_indices
    return cast


class OperatorCache:
    """LRU-bounded memoization of graph operators keyed by content.

    Entries are keyed by ``(graph.fingerprint, op, kind, self_loops,
    alpha)``; because the fingerprint hashes the CSR arrays themselves, a
    rebuilt-but-identical graph hits the cache while any structural or
    weight change misses. Value-dtype variants (``dtype=`` on the
    accessors, e.g. a float32 operator for the reduced-precision
    propagation mode) are cached under the canonical key extended with a
    dtype token and share the canonical entry's frozen index structure.
    Results are shared and frozen — copy before mutating.

    Parameters
    ----------
    max_entries:
        Maximum number of cached operators; least-recently-used entries
        are evicted beyond this bound.
    threadsafe:
        Guard lookups/evictions with a reentrant lock (default) so
        concurrent serving workers share one cache without torn LRU
        state. Pass ``False`` for a lock-free single-threaded cache.
    """

    def __init__(self, max_entries: int = 64, threadsafe: bool = True) -> None:
        check_int_range("max_entries", max_entries, 1)
        self.max_entries = max_entries
        self._store: OrderedDict[tuple, sp.csr_matrix] = OrderedDict()
        self._lock = make_lock(threadsafe)
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Core lookup
    # ------------------------------------------------------------------ #

    def _lookup(self, key: tuple, builder: Callable[[], sp.spmatrix]) -> sp.csr_matrix:
        if self._lock is None:
            return self._lookup_impl(key, builder)
        with self._lock:
            # The build runs under the (reentrant) lock: concurrent
            # requests for the same operator would otherwise build it
            # twice, and builds are registration-time events, not
            # per-request hot-path work.
            return self._lookup_impl(key, builder)

    def _lookup_impl(
        self, key: tuple, builder: Callable[[], sp.spmatrix]
    ) -> sp.csr_matrix:
        cached = self._store.get(key)
        if cached is not None:
            self._hits += 1
            self._store.move_to_end(key)
            return cached
        self._misses += 1
        if OBS.enabled:
            with OBS.tracer.span(
                "perf.operator_build", op=key[1], kind=str(key[2])
            ) as span:
                matrix = _freeze(builder().tocsr())
                span.set(nnz=int(matrix.nnz), n_rows=int(matrix.shape[0]))
        else:
            matrix = _freeze(builder().tocsr())
        self._store[key] = matrix
        if len(self._store) > self.max_entries:
            evicted, _ = self._store.popitem(last=False)
            self._evictions += 1
            _LOG.debug("evicted operator %s/%s (LRU bound %d)",
                       evicted[1], evicted[2], self.max_entries)
        return matrix

    def _typed(
        self, key: tuple, builder: Callable[[], sp.spmatrix], dtype
    ) -> sp.csr_matrix:
        """The canonical operator, or its cached value-dtype variant.

        ``dtype=None`` (and a dtype matching the canonical data) return
        the canonical entry — zero extra cost on the default path. Other
        dtypes are cached under the canonical key extended with the
        dtype token, built by casting ``data`` while sharing the frozen
        ``indices``/``indptr`` (and frozen themselves by the lookup).
        """
        base = self._lookup(key, builder)
        if dtype is None:
            return base
        dt = np.dtype(dtype)
        if base.data.dtype == dt:
            return base
        return self._lookup(key + (dt.str,), lambda: _cast_shared(base, dt))

    # ------------------------------------------------------------------ #
    # Operator accessors (mirror repro.graph.ops)
    # ------------------------------------------------------------------ #

    def adjacency(
        self, graph: Graph, self_loops: bool = False, dtype=None
    ) -> sp.csr_matrix:
        """Cached :func:`repro.graph.ops.adjacency_matrix`."""
        key = (graph.fingerprint, "adjacency", None, bool(self_loops), None)
        return self._typed(
            key,
            lambda: graph_ops.adjacency_matrix(graph, self_loops=self_loops),
            dtype,
        )

    def normalized_adjacency(
        self, graph: Graph, kind: str = "sym", self_loops: bool = True, dtype=None
    ) -> sp.csr_matrix:
        """Cached :func:`repro.graph.ops.normalized_adjacency`."""
        key = (graph.fingerprint, "norm_adj", kind, bool(self_loops), None)
        return self._typed(
            key,
            lambda: graph_ops.normalized_adjacency(
                graph, kind=kind, self_loops=self_loops
            ),
            dtype,
        )

    def laplacian(
        self, graph: Graph, kind: str = "sym", dtype=None
    ) -> sp.csr_matrix:
        """Cached :func:`repro.graph.ops.laplacian_matrix`."""
        key = (graph.fingerprint, "laplacian", kind, None, None)
        return self._typed(
            key, lambda: graph_ops.laplacian_matrix(graph, kind=kind), dtype
        )

    def propagation(
        self,
        graph: Graph,
        scheme: str = "gcn",
        alpha: float | None = None,
        dtype=None,
    ) -> sp.csr_matrix:
        """Cached :func:`repro.graph.ops.propagation_matrix`."""
        key = (
            graph.fingerprint,
            "propagation",
            scheme,
            None,
            None if alpha is None else float(alpha),
        )
        return self._typed(
            key,
            lambda: graph_ops.propagation_matrix(graph, scheme=scheme, alpha=alpha),
            dtype,
        )

    # ------------------------------------------------------------------ #
    # Introspection / management
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction accounting since construction (or clear)."""
        with self._lock or NULL_LOCK:
            return CacheStats(self._hits, self._misses, self._evictions)

    @property
    def nbytes(self) -> int:
        """Total bytes held by cached operator buffers."""
        with self._lock or NULL_LOCK:
            return sum(
                m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
                for m in self._store.values()
            )

    def snapshot(self) -> dict[str, float]:
        """Flat counter/rate dict (:class:`repro.obs.StatsSource`)."""
        with self._lock or NULL_LOCK:
            s = CacheStats(self._hits, self._misses, self._evictions)
            entries = len(self._store)
            nbytes = sum(
                m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
                for m in self._store.values()
            )
        return {
            "hits": s.hits,
            "misses": s.misses,
            "evictions": s.evictions,
            "accesses": s.accesses,
            "hit_rate": s.hit_rate,
            "entries": entries,
            "nbytes": nbytes,
        }

    def reset(self) -> None:
        """Zero the counters; cached operators stay resident
        (:meth:`clear` is the destructive variant)."""
        with self._lock or NULL_LOCK:
            self._hits = self._misses = self._evictions = 0

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock or NULL_LOCK:
            self._store.clear()
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"OperatorCache(entries={len(self)}/{self.max_entries}, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )


# --------------------------------------------------------------------- #
# Process-wide default cache
# --------------------------------------------------------------------- #

_default_cache = OperatorCache()


def get_default_cache() -> OperatorCache:
    """The process-wide cache shared by models and trainers."""
    return _default_cache


def set_default_cache(cache: OperatorCache) -> OperatorCache:
    """Swap the process-wide cache; returns the previous one."""
    global _default_cache
    if not isinstance(cache, OperatorCache):
        raise ConfigError("set_default_cache expects an OperatorCache")
    previous = _default_cache
    _default_cache = cache
    return previous


def cached_adjacency(
    graph: Graph, self_loops: bool = False, cache: OperatorCache | None = None
) -> sp.csr_matrix:
    """Adjacency (optionally ``A + I``) served from the operator cache."""
    return (cache if cache is not None else _default_cache).adjacency(
        graph, self_loops=self_loops
    )


def cached_normalized_adjacency(
    graph: Graph,
    kind: str = "sym",
    self_loops: bool = True,
    cache: OperatorCache | None = None,
) -> sp.csr_matrix:
    """Normalized adjacency served from the operator cache."""
    return (cache if cache is not None else _default_cache).normalized_adjacency(
        graph, kind=kind, self_loops=self_loops
    )


def cached_laplacian(
    graph: Graph, kind: str = "sym", cache: OperatorCache | None = None
) -> sp.csr_matrix:
    """Graph Laplacian served from the operator cache."""
    return (cache if cache is not None else _default_cache).laplacian(graph, kind=kind)


def cached_propagation_matrix(
    graph: Graph,
    scheme: str = "gcn",
    alpha: float | None = None,
    cache: OperatorCache | None = None,
) -> sp.csr_matrix:
    """Named propagation operator served from the operator cache."""
    return (cache if cache is not None else _default_cache).propagation(
        graph, scheme=scheme, alpha=alpha
    )
