"""Graph-level regression (§3.1.1 names graph regression as a core task).

A molecule-property-style workload without molecules: many small random
graphs, each labelled with a structural property (mean clustering
coefficient). The model is fully decoupled: per-graph embeddings are
mean-pooled hop features plus cheap structural statistics, precomputed
once; the regressor is a plain MLP trained with mini-batches of graph
rows — the decoupling recipe applied at graph level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.core import Graph
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.graph.ops import propagation_matrix
from repro.tensor.autograd import Tensor, no_grad
from repro.tensor.nn import MLP, Module
from repro.tensor.optim import Adam
from repro.utils.rng import as_rng
from repro.utils.validation import check_int_range


def clustering_coefficient(graph: Graph) -> float:
    """Mean local clustering coefficient (the regression target)."""
    adj = graph.adjacency()
    adj_bool = adj.copy()
    adj_bool.data = np.ones_like(adj_bool.data)
    # triangles through each node = diag(A^3) / 2 for simple graphs.
    a2 = adj_bool @ adj_bool
    tri = np.asarray((a2.multiply(adj_bool)).sum(axis=1)).ravel() / 2.0
    deg = graph.degrees()
    possible = deg * (deg - 1) / 2.0
    local = np.where(possible > 0, tri / np.where(possible > 0, possible, 1.0), 0.0)
    return float(local.mean())


@dataclass(frozen=True)
class GraphRegressionDataset:
    """A bag of small graphs with scalar targets and a split."""

    graphs: list[Graph]
    targets: np.ndarray
    train_ids: np.ndarray
    test_ids: np.ndarray


def graph_property_dataset(
    n_graphs: int = 300,
    min_nodes: int = 12,
    max_nodes: int = 40,
    n_features: int = 4,
    seed=None,
) -> GraphRegressionDataset:
    """Random ER/BA graphs labelled with mean clustering coefficient.

    A 50/50 ER-vs-BA mix gives a wide target spread (BA graphs cluster far
    more); node features are random (the target is purely structural, so
    a sane model must use the topology).
    """
    check_int_range("n_graphs", n_graphs, 4)
    check_int_range("min_nodes", min_nodes, 4)
    check_int_range("max_nodes", max_nodes, min_nodes)
    rng = as_rng(seed)
    graphs: list[Graph] = []
    targets = np.empty(n_graphs)
    for i in range(n_graphs):
        n = int(rng.integers(min_nodes, max_nodes + 1))
        if i % 2 == 0:
            g = erdos_renyi_graph(n, float(rng.uniform(0.15, 0.5)), seed=rng)
        else:
            m = int(rng.integers(2, max(3, n // 4)))
            g = barabasi_albert_graph(n, m, seed=rng)
        g = g.with_data(x=rng.normal(size=(n, n_features)))
        graphs.append(g)
        targets[i] = clustering_coefficient(g)
    perm = rng.permutation(n_graphs)
    split_at = int(0.75 * n_graphs)
    return GraphRegressionDataset(
        graphs, targets, np.sort(perm[:split_at]), np.sort(perm[split_at:])
    )


def pooled_graph_embedding(graph: Graph, k_hops: int = 2) -> np.ndarray:
    """Mean-pooled hop features + structural statistics for one graph."""
    check_int_range("k_hops", k_hops, 0)
    if graph.x is None:
        raise ConfigError("graph needs features for pooled embeddings")
    prop = propagation_matrix(graph, scheme="gcn")
    pooled = [graph.x.mean(axis=0)]
    h = graph.x
    for _ in range(k_hops):
        h = prop @ h
        pooled.append(h.mean(axis=0))
    deg = graph.degrees()
    stats = np.array(
        [
            graph.n_nodes,
            deg.mean(),
            deg.std(),
            deg.max(),
            graph.n_edges / max(graph.n_nodes, 1),
        ]
    )
    return np.concatenate(pooled + [stats])


class GraphRegressor(Module):
    """MLP over precomputed pooled graph embeddings."""

    def __init__(self, in_features: int, hidden: int = 32, seed=None) -> None:
        super().__init__()
        self.net = MLP(in_features, hidden, 1, n_layers=2, seed=seed)

    def forward(self, rows: np.ndarray | Tensor) -> Tensor:
        if not isinstance(rows, Tensor):
            rows = Tensor(rows)
        return self.net(rows)


def train_graph_regression(
    dataset: GraphRegressionDataset,
    k_hops: int = 2,
    hidden: int = 8,
    epochs: int = 800,
    lr: float = 0.01,
    seed=None,
) -> tuple[GraphRegressor, float, float]:
    """Train and evaluate; returns (model, test MAE, test R^2)."""
    rng = as_rng(seed)
    embeddings = np.stack(
        [pooled_graph_embedding(g, k_hops) for g in dataset.graphs]
    )
    # Standardise features for a well-conditioned regression.
    mu, sigma = embeddings.mean(axis=0), embeddings.std(axis=0)
    embeddings = (embeddings - mu) / np.where(sigma > 0, sigma, 1.0)
    model = GraphRegressor(embeddings.shape[1], hidden, seed=rng)
    opt = Adam(model.parameters(), lr=lr, weight_decay=1e-4)
    x_train = Tensor(embeddings[dataset.train_ids])
    y_train = Tensor(dataset.targets[dataset.train_ids][:, None])
    model.train()
    for _ in range(epochs):
        opt.zero_grad()
        diff = model(x_train) - y_train
        loss = (diff * diff).mean()
        loss.backward()
        opt.step()
    model.eval()
    with no_grad():
        pred = model(Tensor(embeddings[dataset.test_ids])).data.ravel()
    truth = dataset.targets[dataset.test_ids]
    mae = float(np.abs(pred - truth).mean())
    ss_res = float(((pred - truth) ** 2).sum())
    ss_tot = float(((truth - truth.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / max(ss_tot, 1e-12)
    return model, mae, r2
