"""Downstream tasks beyond node classification.

§3.1.1 names node classification, link prediction, and graph regression
as the fundamental graph understanding tasks; this subpackage provides
the latter two (node classification lives in :mod:`repro.training`).
"""

from repro.tasks.graph_level import (
    GraphRegressionDataset,
    GraphRegressor,
    clustering_coefficient,
    graph_property_dataset,
    pooled_graph_embedding,
    train_graph_regression,
)
from repro.tasks.linkpred import (
    LinkSplit,
    auc_score,
    dot_product_link_scores,
    split_edges,
    SurelLinkPredictor,
    EmbeddingLinkPredictor,
)

__all__ = [
    "LinkSplit",
    "split_edges",
    "auc_score",
    "dot_product_link_scores",
    "EmbeddingLinkPredictor",
    "SurelLinkPredictor",
    "GraphRegressionDataset",
    "GraphRegressor",
    "clustering_coefficient",
    "graph_property_dataset",
    "pooled_graph_embedding",
    "train_graph_regression",
]
