"""Link prediction: edge splits, scorers, and SUREL-style RPE classifiers.

Two families of scorers, mirroring the tutorial's §3.3.3 contrast:

* :class:`EmbeddingLinkPredictor` — the classic pipeline: node embeddings
  (any decoupled propagation) + a trainable scorer on the Hadamard product
  of endpoint embeddings.
* :class:`SurelLinkPredictor` — the subgraph-based pipeline: per-pair
  features are *relative positional encodings* joined from the walk-set
  storage (SUREL [53]); no node embeddings at all, so structurally
  distinguishable pairs that embeddings conflate (e.g. automorphic nodes)
  stay distinguishable.

Evaluation is AUC over held-out positive edges vs sampled non-edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.editing.subgraph import WalkSetStorage
from repro.errors import ConfigError, GraphError, NotFittedError
from repro.graph.core import Graph
from repro.tensor import functional as F
from repro.tensor.autograd import Tensor, no_grad
from repro.tensor.nn import MLP, Module
from repro.tensor.optim import Adam
from repro.utils.rng import as_rng
from repro.utils.validation import check_fraction, check_int_range


@dataclass(frozen=True)
class LinkSplit:
    """An edge-level train/test split for link prediction.

    Attributes
    ----------
    train_graph:
        The observed graph: original minus held-out test edges.
    train_pos, train_neg:
        Training pairs (edges of the train graph / sampled non-edges).
    test_pos, test_neg:
        Held-out true edges / sampled non-edges for evaluation.
    """

    train_graph: Graph
    train_pos: np.ndarray
    train_neg: np.ndarray
    test_pos: np.ndarray
    test_neg: np.ndarray


def _sample_non_edges(graph: Graph, count: int, rng) -> np.ndarray:
    """Rejection-sample ``count`` unordered non-adjacent pairs."""
    out: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    n = graph.n_nodes
    max_tries = 50 * count + 100
    tries = 0
    while len(out) < count and tries < max_tries:
        tries += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen or graph.has_edge(u, v):
            continue
        seen.add(key)
        out.append(key)
    if len(out) < count:
        raise GraphError("could not sample enough non-edges (graph too dense?)")
    return np.asarray(out, dtype=np.int64)


def split_edges(
    graph: Graph, test_fraction: float = 0.1, seed=None
) -> LinkSplit:
    """Hold out ``test_fraction`` of edges; sample matched non-edges.

    Held-out edges are removed from the training graph (no leakage);
    negatives are sampled against the *full* graph so test negatives are
    true non-edges.
    """
    check_fraction("test_fraction", test_fraction)
    if graph.directed:
        raise GraphError("split_edges supports undirected graphs only")
    rng = as_rng(seed)
    edges = graph.edge_array()
    upper = edges[edges[:, 0] < edges[:, 1]]
    n_test = max(1, int(test_fraction * len(upper)))
    perm = rng.permutation(len(upper))
    test_pos = upper[perm[:n_test]]
    train_pos = upper[perm[n_test:]]
    train_graph = Graph.from_edges(
        train_pos, graph.n_nodes, x=graph.x, y=graph.y
    )
    test_neg = _sample_non_edges(graph, n_test, rng)
    train_neg = _sample_non_edges(graph, len(train_pos), rng)
    return LinkSplit(train_graph, train_pos, train_neg, test_pos, test_neg)


def auc_score(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """Rank-based AUC: P(random positive outranks random negative)."""
    pos_scores = np.asarray(pos_scores, dtype=np.float64)
    neg_scores = np.asarray(neg_scores, dtype=np.float64)
    if len(pos_scores) == 0 or len(neg_scores) == 0:
        raise ConfigError("AUC needs at least one positive and one negative")
    all_scores = np.concatenate([pos_scores, neg_scores])
    order = np.argsort(all_scores, kind="stable")
    ranks = np.empty(len(all_scores))
    ranks[order] = np.arange(1, len(all_scores) + 1)
    # Midrank correction for ties.
    for value in np.unique(all_scores):
        mask = all_scores == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    pos_ranks = ranks[: len(pos_scores)]
    n_pos, n_neg = len(pos_scores), len(neg_scores)
    return float(
        (pos_ranks.sum() - n_pos * (n_pos + 1) / 2) / (n_pos * n_neg)
    )


def dot_product_link_scores(
    embeddings: np.ndarray, pairs: np.ndarray
) -> np.ndarray:
    """Untrained baseline: inner products of endpoint embeddings."""
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return np.einsum(
        "ij,ij->i", embeddings[pairs[:, 0]], embeddings[pairs[:, 1]]
    )


class _PairClassifier(Module):
    """Shared machinery: binary MLP over per-pair feature vectors."""

    def __init__(self, in_features: int, hidden: int, seed=None) -> None:
        super().__init__()
        self.mlp = MLP(in_features, hidden, 2, n_layers=2, seed=seed)

    def forward(self, feats: np.ndarray | Tensor) -> Tensor:
        if not isinstance(feats, Tensor):
            feats = Tensor(feats)
        return self.mlp(feats)

    def fit(
        self,
        pos_feats: np.ndarray,
        neg_feats: np.ndarray,
        epochs: int,
        lr: float,
        batch_size: int,
        rng,
    ) -> None:
        x = np.concatenate([pos_feats, neg_feats])
        y = np.concatenate(
            [np.ones(len(pos_feats), dtype=np.int64),
             np.zeros(len(neg_feats), dtype=np.int64)]
        )
        opt = Adam(self.parameters(), lr=lr, weight_decay=5e-4)
        self.train()
        for _ in range(epochs):
            perm = rng.permutation(len(x))
            for start in range(0, len(perm), batch_size):
                idx = perm[start : start + batch_size]
                opt.zero_grad()
                loss = F.cross_entropy(self(x[idx]), y[idx])
                loss.backward()
                opt.step()
        self.eval()

    def scores(self, feats: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self(feats).data
        return logits[:, 1] - logits[:, 0]


class EmbeddingLinkPredictor:
    """Hadamard-product MLP scorer over fixed node embeddings."""

    def __init__(self, hidden: int = 32, epochs: int = 60, lr: float = 0.01,
                 batch_size: int = 256, seed=None) -> None:
        check_int_range("epochs", epochs, 1)
        self._rng = as_rng(seed)
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self._clf: _PairClassifier | None = None
        self._emb: np.ndarray | None = None

    def _pair_features(self, pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return self._emb[pairs[:, 0]] * self._emb[pairs[:, 1]]

    def fit(self, embeddings: np.ndarray, split: LinkSplit) -> "EmbeddingLinkPredictor":
        self._emb = np.asarray(embeddings, dtype=np.float64)
        self._clf = _PairClassifier(self._emb.shape[1], self.hidden, seed=self._rng)
        self._clf.fit(
            self._pair_features(split.train_pos),
            self._pair_features(split.train_neg),
            self.epochs, self.lr, self.batch_size, self._rng,
        )
        return self

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        if self._clf is None:
            raise NotFittedError("call fit() first")
        return self._clf.scores(self._pair_features(pairs))


class SurelLinkPredictor:
    """SUREL-style link scorer: walk-set join features + MLP.

    Per pair (u, v), features are pooled relative positional encodings of
    the joined walk sets: mean and max of the RPE rows, which summarise
    how the two walk neighbourhoods overlap (common-neighbour structure at
    every walk depth).
    """

    def __init__(self, n_walks: int = 24, walk_length: int = 3,
                 hidden: int = 32, epochs: int = 60, lr: float = 0.01,
                 batch_size: int = 256, seed=None) -> None:
        self._rng = as_rng(seed)
        self.storage = WalkSetStorage(
            n_walks=n_walks, walk_length=walk_length, seed=self._rng
        )
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self._clf: _PairClassifier | None = None

    def _pair_features(self, pairs: np.ndarray) -> np.ndarray:
        feats = []
        for u, v in np.asarray(pairs, dtype=np.int64).reshape(-1, 2):
            _, rpe = self.storage.query_pair(int(u), int(v))
            half = rpe.shape[1] // 2
            overlap = np.minimum(rpe[:, :half], rpe[:, half:])
            feats.append(
                np.concatenate(
                    [rpe.mean(axis=0), rpe.max(axis=0), overlap.sum(axis=0)]
                )
            )
        return np.asarray(feats)

    def fit(self, split: LinkSplit) -> "SurelLinkPredictor":
        self.storage.build(split.train_graph)
        self._clf = _PairClassifier(
            self._pair_features(split.train_pos[:1]).shape[1],
            self.hidden, seed=self._rng,
        )
        self._clf.fit(
            self._pair_features(split.train_pos),
            self._pair_features(split.train_neg),
            self.epochs, self.lr, self.batch_size, self._rng,
        )
        return self

    def predict(self, pairs: np.ndarray) -> np.ndarray:
        if self._clf is None:
            raise NotFittedError("call fit() first")
        return self._clf.scores(self._pair_features(pairs))
