"""Heterophilous graphs: where low-pass GNNs lose their edge (§3.1.3).

In tasks like anomaly detection, nodes connect to *dissimilar* neighbours,
and conventional homophily-smoothing GNNs degrade — at mid/low homophily a
2-layer GCN can fall below a graph-free MLP, i.e. the graph actively hurts.
This example sweeps the homophily of a contextual SBM and compares:

* MLP        — graph-free reference (is the graph helping at all?),
* GCN        — low-pass iterative baseline,
* LD2        — decoupled multi-filter (low-pass + high-pass) model,
* SIMGA      — decoupled global aggregation by SimRank similarity.

Run:  python examples/heterophily_anomaly.py
"""

import numpy as np

from repro.bench import Table
from repro.datasets import contextual_sbm
from repro.models import GCN, LD2, SGC, SIMGA
from repro.training import train_decoupled, train_full_batch

SEEDS = (0, 1, 2)


def run_models(homophily: float) -> dict[str, float]:
    accs: dict[str, list[float]] = {"MLP": [], "GCN": [], "LD2": [], "SIMGA": []}
    for seed in SEEDS:
        graph, split = contextual_sbm(
            n_nodes=800,
            n_classes=2,
            homophily=homophily,
            avg_degree=8,
            n_features=16,
            feature_signal=0.4,  # weak features: topology must help
            seed=seed,
        )
        mlp = SGC(graph.n_features, graph.n_classes, k_hops=0, hidden=32, seed=seed)
        accs["MLP"].append(
            train_decoupled(mlp, graph, split, epochs=100, seed=seed).test_accuracy
        )
        gcn = GCN(graph.n_features, 32, graph.n_classes, seed=seed)
        accs["GCN"].append(
            train_full_batch(gcn, graph, split, epochs=100).test_accuracy
        )
        ld2 = LD2(graph.n_features, 32, graph.n_classes, k_hops=2, seed=seed)
        accs["LD2"].append(
            train_decoupled(ld2, graph, split, epochs=100, seed=seed).test_accuracy
        )
        simga = SIMGA(
            graph.n_features, 32, graph.n_classes,
            topk=16, n_walks=150, walk_length=8, seed=seed,
        )
        accs["SIMGA"].append(
            train_decoupled(simga, graph, split, epochs=100, seed=seed).test_accuracy
        )
    return {name: float(np.mean(vals)) for name, vals in accs.items()}


def main() -> None:
    table = Table(
        "test accuracy (mean of 3 seeds) across the homophily spectrum",
        ["edge homophily", "MLP (no graph)", "GCN", "LD2", "SIMGA"],
    )
    for homophily in (0.9, 0.3, 0.05):
        scores = run_models(homophily)
        table.add_row(
            homophily,
            f"{scores['MLP']:.3f}",
            f"{scores['GCN']:.3f}",
            f"{scores['LD2']:.3f}",
            f"{scores['SIMGA']:.3f}",
        )
    print(table.render())
    print(
        "\nAt mid/low homophily the low-pass GCN can dip below the graph-free "
        "MLP, while multi-filter (LD2) and global-similarity (SIMGA) models "
        "keep extracting signal from the heterophilous structure."
    )


if __name__ == "__main__":
    main()
