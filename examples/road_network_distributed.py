"""Road-network workload: distance indexing and partitioned training.

The route-planning motivation of the tutorial's introduction, on a planar
grid "road network":

* hub labeling answers shortest-path-distance queries orders of magnitude
  faster than per-query BFS after a one-time indexing pass (§3.2.2),
* graph partitioning splits the network across simulated workers, and the
  partitioner's edge cut directly sets the communication bill (§3.1.2).

Run:  python examples/road_network_distributed.py
"""

import numpy as np

from repro.analytics import HubLabeling
from repro.bench import Table, format_bytes, format_seconds
from repro.datasets import random_split
from repro.editing import ldg_partition, random_partition
from repro.graph import grid_graph, shortest_path_distance
from repro.training import simulate_distributed_training
from repro.utils import Timer, as_rng


GRID = 30


def main() -> None:
    road = grid_graph(GRID, GRID)
    print(f"road network: {road}\n")

    # --- Distance queries: BFS vs hub labels --------------------------- #
    rng = as_rng(0)
    pairs = rng.integers(0, road.n_nodes, size=(200, 2))

    build_timer = Timer()
    with build_timer:
        index = HubLabeling().build(road)

    bfs_timer = Timer()
    with bfs_timer:
        bfs_answers = [
            shortest_path_distance(road, int(a), int(b)) for a, b in pairs
        ]
    hl_timer = Timer()
    with hl_timer:
        hl_answers = index.query_batch(pairs)
    assert np.array_equal(np.asarray(bfs_answers), hl_answers)

    table = Table(
        "200 shortest-path-distance queries",
        ["method", "one-time build", "query time", "per query"],
    )
    table.add_row("bidirectional BFS", "-", format_seconds(bfs_timer.elapsed),
                  format_seconds(bfs_timer.elapsed / 200))
    table.add_row(
        f"hub labels (avg {index.average_label_size:.1f}/node)",
        format_seconds(build_timer.elapsed),
        format_seconds(hl_timer.elapsed),
        format_seconds(hl_timer.elapsed / 200),
    )
    print(table.render())

    # --- Partitioned (simulated distributed) training ------------------ #
    # Region labels: quadrant of the grid; features are noisy coordinates
    # (a sensor-region prediction task: GPS jitter in, region out).
    rows, cols = np.divmod(np.arange(road.n_nodes), GRID)
    half = GRID // 2
    labels = (rows >= half).astype(int) * 2 + (cols >= half).astype(int)
    coords = np.column_stack([rows, cols]) / GRID
    features = np.concatenate(
        [coords + rng.normal(scale=0.3, size=coords.shape),
         rng.normal(size=(road.n_nodes, 6))],
        axis=1,
    )
    graph = road.with_data(x=features, y=labels)
    split = random_split(graph.n_nodes, seed=0)

    table2 = Table(
        "4-worker simulated training (80 epochs)",
        ["partitioner", "edge cut", "halo floats/epoch", "test acc"],
    )
    for name, part in [
        ("random", random_partition(graph, 4, seed=0)),
        ("LDG streaming", ldg_partition(graph, 4, seed=0)),
    ]:
        res = simulate_distributed_training(
            graph, split, part.assignment, 4, epochs=80, seed=0
        )
        table2.add_row(
            name, part.edge_cut,
            format_bytes(8 * res.halo_floats_per_epoch), f"{res.test_accuracy:.3f}",
        )
    print("\n" + table2.render())
    print("\nA better partitioner cuts the per-epoch halo exchange directly.")


if __name__ == "__main__":
    main()
