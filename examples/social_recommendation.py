"""Social-network workload: hub-skewed graph, PPR queries, bounded batches.

The e-commerce/social motivation of the tutorial's introduction: a
power-law "follower" graph where we want (a) related-user queries on
demand, (b) node classification trained under a strict per-batch memory
budget. Shows three data-management tools working together:

* forward-push PPR for local, on-demand related-user queries,
* PPRGo for classification whose batches touch a bounded support,
* analytic memory accounting comparing full-batch vs PPRGo batches.

Run:  python examples/social_recommendation.py
"""

import numpy as np

from repro.analytics import ppr_forward_push, topk_ppr
from repro.bench import Table, format_bytes, full_batch_training_floats
from repro.datasets import scale_free_classification
from repro.models import PPRGo
from repro.training import train_pprgo


def main() -> None:
    graph, split = scale_free_classification(
        n_nodes=1500, n_classes=3, attachment=4, n_features=24,
        feature_signal=1.5, seed=1,
    )
    print(f"social graph: {graph}")
    hub = int(np.argmax(graph.degrees()))
    print(f"top hub: user {hub} with degree {int(graph.degrees()[hub])}\n")

    # --- On-demand related-user queries (forward push) ----------------- #
    push = ppr_forward_push(graph, hub, alpha=0.2, epsilon=2e-4)
    related, scores = topk_ppr(graph, hub, 6, alpha=0.2, epsilon=1e-6)
    print("related users for the hub (top-5 PPR, excluding itself):")
    for user, score in list(zip(related, scores))[1:6]:
        print(f"  user {user:5d}  ppr={score:.4f}")
    print(
        f"query touched {push.n_touched} of {graph.n_nodes} users "
        f"({push.n_pushes} pushes) — local, graph-size-independent work\n"
    )

    # --- Classification with bounded batch support (PPRGo) ------------- #
    model = PPRGo(
        graph.n_features, 32, graph.n_classes, alpha=0.2, topk=16,
        epsilon=1e-4, seed=0,
    )
    result = train_pprgo(model, graph, split, epochs=40, batch_size=64, seed=0)

    batch = split.train[:64]
    support = model.batch_support_size(batch)
    table = Table(
        "per-step resident floats (64-node batch)",
        ["strategy", "feature rows resident", "approx bytes"],
    )
    full_floats = full_batch_training_floats(
        graph.n_nodes, graph.n_edges, graph.n_features, 32, graph.n_classes
    )
    table.add_row("full-batch GCN", graph.n_nodes, format_bytes(8 * full_floats))
    table.add_row(
        "PPRGo batch", support, format_bytes(8 * support * graph.n_features)
    )
    print(table.render())
    print(f"\nPPRGo test accuracy: {result.test_accuracy:.3f} "
          f"(precompute {result.precompute_time:.1f}s, "
          f"train loop {result.train_time:.1f}s)")


if __name__ == "__main__":
    main()
