"""Graph-level regression: predict a structural property of whole graphs.

§3.1.1 lists graph regression among the fundamental GNN tasks (think
molecule property prediction). This example builds a bag of small random
graphs labelled with their mean clustering coefficient and trains the
fully decoupled pipeline: pooled hop embeddings precomputed per graph,
then a tiny MLP regressor.

Run:  python examples/graph_property_regression.py
"""

import numpy as np

from repro.bench import Table
from repro.tasks import graph_property_dataset, train_graph_regression


def main() -> None:
    dataset = graph_property_dataset(n_graphs=300, seed=0)
    print(
        f"{len(dataset.graphs)} graphs, "
        f"{len(dataset.train_ids)} train / {len(dataset.test_ids)} test; "
        f"target = mean clustering coefficient "
        f"(range {dataset.targets.min():.2f}..{dataset.targets.max():.2f})\n"
    )
    model, mae, r2 = train_graph_regression(dataset, seed=0)

    table = Table(
        "decoupled graph-level regression",
        ["metric", "value"],
    )
    table.add_row("test MAE", f"{mae:.4f}")
    table.add_row("test R^2", f"{r2:.3f}")
    table.add_row("target std (mean-predictor MAE scale)",
                  f"{dataset.targets.std():.4f}")
    print(table.render())

    # Show a few predictions.
    from repro.tasks import pooled_graph_embedding
    from repro.tensor.autograd import Tensor, no_grad

    emb = np.stack([
        pooled_graph_embedding(dataset.graphs[i], 2) for i in dataset.test_ids[:5]
    ])
    # NOTE: quick display only; train_graph_regression standardised inputs,
    # so re-standardise with the full-corpus statistics.
    full = np.stack([pooled_graph_embedding(g, 2) for g in dataset.graphs])
    mu, sd = full.mean(axis=0), full.std(axis=0)
    emb = (emb - mu) / np.where(sd > 0, sd, 1.0)
    with no_grad():
        preds = model(Tensor(emb)).data.ravel()
    print("\nsample predictions (predicted vs true):")
    for i, p in zip(dataset.test_ids[:5], preds):
        print(f"  graph {i:3d}: {p:.3f} vs {dataset.targets[i]:.3f}")


if __name__ == "__main__":
    main()
