"""Quickstart: train an iterative GCN and a decoupled SGC on the same data.

Demonstrates the library's central contrast (§3.1.2 of the tutorial): the
iterative model touches the graph every epoch, the decoupled model touches
it exactly once and then trains like a plain MLP.

Run:  python examples/quickstart.py
"""

from repro.bench import Table, format_seconds
from repro.datasets import contextual_sbm
from repro.models import GCN, SGC
from repro.training import train_decoupled, train_full_batch


def main() -> None:
    # A contextual SBM: 2000 nodes, 4 communities, homophilous edges,
    # Gaussian class features — a small stand-in for a citation network.
    graph, split = contextual_sbm(
        n_nodes=2000,
        n_classes=4,
        homophily=0.85,
        avg_degree=10,
        n_features=32,
        feature_signal=1.2,
        seed=0,
    )
    print(f"dataset: {graph}")
    print(f"splits: {len(split.train)} train / {len(split.val)} val / "
          f"{len(split.test)} test\n")

    gcn = GCN(graph.n_features, 64, graph.n_classes, n_layers=2, seed=0)
    gcn_result = train_full_batch(gcn, graph, split, epochs=100)

    sgc = SGC(graph.n_features, graph.n_classes, k_hops=2, hidden=64, seed=0)
    sgc_result = train_decoupled(sgc, graph, split, epochs=100, seed=0)

    table = Table(
        "iterative vs decoupled (same data, same budget)",
        ["model", "test acc", "precompute", "train loop", "best epoch"],
    )
    for name, res in [("GCN (iterative)", gcn_result), ("SGC (decoupled)", sgc_result)]:
        table.add_row(
            name,
            f"{res.test_accuracy:.3f}",
            format_seconds(res.precompute_time),
            format_seconds(res.train_time),
            res.best_epoch,
        )
    print(table.render())
    print(
        "\nThe decoupled model pays a one-time propagation cost and then "
        "trains on feature rows only — no graph in the epoch loop."
    )


if __name__ == "__main__":
    main()
