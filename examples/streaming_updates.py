"""Dynamic graphs: maintain PPR embeddings under a live edge stream.

The tutorial's §3.4.2 asks how scalable GNN pipelines accommodate dynamic
graphs. Decoupled models depend on precomputed propagation (e.g. PPR
rows); this example streams edge insertions into a social-style graph and
keeps a user's PPR row *exactly maintained* via local residual corrections
— then shows the recommendation list updating as the user's neighbourhood
evolves, at a per-update cost that is orders of magnitude below
recomputation.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro.analytics.ppr import ppr_forward_push
from repro.bench import Table, format_seconds
from repro.graph import barabasi_albert_graph
from repro.graph.dynamic import DynamicGraph, IncrementalPPR
from repro.utils import Timer


def top_recommendations(estimate: np.ndarray, user: int, k: int = 5):
    scores = estimate.copy()
    scores[user] = -np.inf
    return np.argsort(-scores, kind="stable")[:k]


def main() -> None:
    base = barabasi_albert_graph(5000, 3, seed=0)
    user = 4200
    dyn = DynamicGraph.from_graph(base)
    tracker = IncrementalPPR(dyn, user, alpha=0.2, epsilon=1e-6)
    print(f"graph: {base}")
    print(f"tracking PPR for user {user} "
          f"(degree {dyn.degree(user)})\n")
    print("initial recommendations:",
          top_recommendations(tracker.estimate, user))

    rng = np.random.default_rng(1)
    n_updates = 300
    t_inc = Timer()
    with t_inc:
        for _ in range(n_updates):
            while True:
                u = int(rng.integers(dyn.n_nodes))
                v = int(rng.integers(dyn.n_nodes))
                if u != v and not dyn.has_edge(u, v):
                    break
            tracker.insert_edge(u, v)
    # A couple of edges straight onto the tracked user: the list must move.
    for _ in range(3):
        while True:
            v = int(rng.integers(dyn.n_nodes))
            if v != user and not dyn.has_edge(user, v):
                break
        tracker.insert_edge(user, v)
    print("after the stream:      ",
          top_recommendations(tracker.estimate, user))

    # Compare one full recompute against the amortised update cost.
    t_full = Timer()
    with t_full:
        ppr_forward_push(dyn.snapshot(), user, alpha=0.2, epsilon=1e-6)

    table = Table(
        f"maintaining one PPR row through {n_updates} edge insertions",
        ["strategy", "per update"],
    )
    table.add_row("incremental (exact invariant)",
                  format_seconds(t_inc.elapsed / n_updates))
    table.add_row("full push recompute",
                  format_seconds(t_full.elapsed))
    print("\n" + table.render())
    print("\ninvariant still exact:", tracker.check_invariant())


if __name__ == "__main__":
    main()
